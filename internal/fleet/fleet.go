// Package fleet is the multi-instance driver over the simulated
// kernel: it shards a synthetic open-loop HTTP-style workload across N
// independent kernel instances, runs the fault and crash machinery on
// each, and exercises the full survival story end to end — a tenant
// whose grafts keep misbehaving is throttled and banned by the tenant
// layer, and an instance that dies is replaced by a fresh kernel
// rebooted from the dead one's durable checkpoint ring, with tenant
// standing carried across the reboot.
//
// Determinism is the fleet's contract: instances are fully independent
// jobs, each seeded with a splitmix64-derived sub-seed and driven by
// its own PRNG, so a fixed (seed, instances, tenants) tuple produces
// byte-identical reports at any worker-pool size. The pool only decides
// which instances run concurrently; results are merged strictly in
// instance order, the same shard discipline the chaos campaign uses.
package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"vino/internal/fault"
	"vino/internal/guard"
	"vino/internal/kernel"
	"vino/internal/netstk"
	"vino/internal/resource"
	"vino/internal/tenant"
)

// Config parameterises a fleet run.
type Config struct {
	// Seed drives every deterministic decision: per-instance sub-seeds,
	// arrival interleaving, death rounds, fault plans.
	Seed int64
	// Instances is the number of kernel instances (default 2).
	Instances int
	// Tenants is the number of well-behaved tenants (default 2). Each
	// tenant owns one listener port per instance and installs an echo
	// graft behind it.
	Tenants int
	// Abusive adds one more tenant whose graft allocates kernel heap
	// until its account denies (aborting every invocation) and whose
	// socket grant is too small for its arrival rate — the tenant the
	// escalation ladder exists for.
	Abusive bool
	// Rounds is the number of traffic rounds per instance (default 6).
	Rounds int
	// Arrivals is the per-tenant arrival count per round (default 4);
	// the abusive tenant generates twice that.
	Arrivals int
	// Workers bounds how many instances run concurrently (default 1).
	// The report is byte-identical at any value.
	Workers int
	// CrashFaults arms seed-derived kernel panics at the crash sites;
	// contained panics restore the newest in-memory checkpoint.
	CrashFaults bool
	// Dir is the root of the durable checkpoint rings (one inst-<id>
	// subdirectory per instance). Empty uses a temporary directory
	// removed when the run ends.
	Dir string
	// TenantPolicy overrides the escalation thresholds and per-tenant
	// resource grants. The zero value uses DefaultTenantLimits and the
	// default ladder (throttle on the first expulsion, ban on the
	// second).
	TenantPolicy tenant.Policy
	// GuardPolicy overrides the per-instance graft supervisor policy.
	// Nil uses an aggressive ladder sized to the fleet's short rounds.
	GuardPolicy *guard.Policy
}

// DefaultTenantLimits is the resource grant each tenant account starts
// with: enough sockets and memory for a round of well-behaved traffic,
// and a kernel-heap budget small enough that a gobbler hits denial
// within one invocation.
func DefaultTenantLimits() map[resource.Kind]int64 {
	return map[resource.Kind]int64{
		resource.Sockets:    64,
		resource.Memory:     1 << 20,
		resource.KernelHeap: 16 << 10,
	}
}

func (c Config) withDefaults() Config {
	if c.Instances <= 0 {
		c.Instances = 2
	}
	if c.Tenants <= 0 {
		c.Tenants = 2
	}
	if c.Rounds <= 0 {
		c.Rounds = 6
	}
	if c.Arrivals <= 0 {
		c.Arrivals = 4
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.TenantPolicy.Limits == nil {
		c.TenantPolicy.Limits = DefaultTenantLimits()
	}
	return c
}

// fleetGuardPolicy is the default supervisor ladder for fleet rounds:
// streak-driven with a near-zero backoff, so an always-aborting graft
// walks suspect → quarantine → probation → expelled within a round or
// two of admitted traffic.
func fleetGuardPolicy() guard.Policy {
	return guard.Policy{
		SuspectStreak:    1,
		QuarantineStreak: 2,
		QuarantinePct:    101, // streaks only; fleet rounds are too short for rates
		MinSample:        1 << 30,
		Backoff:          time.Microsecond,
		BackoffFactor:    1,
		MaxBackoff:       time.Microsecond,
		ProbationCommits: 2,
		ProbationStreak:  1,
		WatchdogTighten:  1,
	}
}

// TenantCell is one tenant's request accounting on one instance.
type TenantCell struct {
	Name                 string
	Served, Shed, Failed int64
}

// InstanceResult is one instance's full accounting.
type InstanceResult struct {
	ID int
	// Rounds completed and instance replacements (reboots from the
	// durable checkpoint ring).
	Rounds, Replacements int
	// Recovered counts contained kernel panics (in-memory restores).
	Recovered int
	// Reattached counts grafts rebound to live tenant accounts after a
	// replacement reboot.
	Reattached int
	// Served, Shed and Failed partition the generated arrivals: served
	// (a handler wrote a response and closed), shed (admission control
	// or a socket-limit denial refused it), failed (the request reached
	// a connection but no committed response came back — aborted
	// handlers, expelled ports, mid-round crashes).
	Served, Shed, Failed int64
	// SocketDenials counts accepts refused by tenant socket budgets.
	SocketDenials int64
	// Expulsions sums tenant-attributed graft expulsions.
	Expulsions int
	// CommittedLines is how many round-ledger lines were made durable.
	CommittedLines int
	// Tenants is the final per-tenant standing, sorted by name.
	Tenants []tenant.Health
	// PerTenant is the per-tenant request accounting, tenant order.
	PerTenant []TenantCell
	// Violations lists fleet-audit failures; empty means the instance's
	// invariants held.
	Violations []string
}

// Result is the merged fleet outcome.
type Result struct {
	Cfg       Config
	Instances []InstanceResult
	// Served, Shed and Failed total the instance partitions.
	Served, Shed, Failed int64
	// Arrivals is the total generated request count; the audit requires
	// Served+Shed+Failed == Arrivals.
	Arrivals int64
	// Violations aggregates per-instance audit failures.
	Violations []string
}

// Clean reports whether every instance's audit held.
func (r *Result) Clean() bool { return len(r.Violations) == 0 }

// Run executes the fleet and merges per-instance results in instance
// order.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "vino-fleet-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	results := make([]*InstanceResult, cfg.Instances)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range jobs {
				results[id] = runInstance(cfg, id, filepath.Join(dir, fmt.Sprintf("inst-%d", id)))
			}
		}()
	}
	for id := 0; id < cfg.Instances; id++ {
		jobs <- id
	}
	close(jobs)
	wg.Wait()

	res := &Result{Cfg: cfg}
	perTenant := int64(cfg.Arrivals * cfg.Rounds)
	res.Arrivals = int64(cfg.Instances) * perTenant * int64(cfg.Tenants)
	if cfg.Abusive {
		res.Arrivals += int64(cfg.Instances) * 2 * perTenant
	}
	for _, ir := range results {
		res.Instances = append(res.Instances, *ir)
		res.Served += ir.Served
		res.Shed += ir.Shed
		res.Failed += ir.Failed
		for _, v := range ir.Violations {
			res.Violations = append(res.Violations, fmt.Sprintf("inst %d: %s", ir.ID, v))
		}
	}
	if got := res.Served + res.Shed + res.Failed; got != res.Arrivals {
		res.Violations = append(res.Violations,
			fmt.Sprintf("fleet: %d arrivals generated but %d accounted", res.Arrivals, got))
	}
	return res, nil
}

// mix is the splitmix64 finalizer over two seeds — the campaign's
// sub-seed derivation, reused so instance streams are independent.
func mix(a, b int64) int64 {
	z := uint64(a)*0x9E3779B97F4A7C15 + uint64(b)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// tenantName returns tenant i's name; the abusive tenant is last.
func tenantName(cfg Config, i int) string {
	if cfg.Abusive && i == cfg.Tenants {
		return "abuser"
	}
	return fmt.Sprintf("t%d", i)
}

// echoSrc is a well-behaved tenant service: read the request, write a
// canned 6-byte response, close. One image name per (tenant,
// generation) so a reinstall after expulsion gets a fresh guard key.
func echoSrc(name string) string {
	return fmt.Sprintf(`
.name %s
.import net.read
.import net.write
.import net.close
.data "SERVED"
.func main
main:
    mov r6, r1
    addi r2, r10, 512
    movi r3, 256
    callk net.read
    mov r1, r6
    mov r2, r10
    movi r3, 6
    callk net.write
    mov r1, r6
    callk net.close
    ret
`, name)
}

// gobbleSrc is the abusive tenant's service: allocate kernel heap until
// the tenant account denies. Every invocation aborts, so the guard
// walks it to expulsion and the tenant layer up the ladder.
func gobbleSrc(name string) string {
	return fmt.Sprintf(`
.name %s
.import vino.kheap_alloc
.func main
main:
    movi r1, 4096
loop:
    callk vino.kheap_alloc
    jmp loop
`, name)
}

// arrival is one generated request.
type arrival struct {
	tenant int // tenant index
	seq    int64
	// outcome
	admitted bool
	conn     *netstk.Conn
	denied   bool // socket-limit denial at accept
	reached  bool // the driver actually attempted the connect
}

// instance is one kernel instance's live state.
type instance struct {
	cfg  Config
	id   int
	dir  string
	k    *kernel.Kernel
	n    *netstk.Net
	treg *tenant.Registry
	rng  *rand.Rand

	res       *InstanceResult
	cells     []*TenantCell
	seqs      []int64 // per-tenant admission sequence numbers
	gens      []int   // per-tenant image generation (bumped on reinstall)
	committed []string
	procSeq   int
}

func (in *instance) violate(format string, args ...any) {
	in.res.Violations = append(in.res.Violations, fmt.Sprintf(format, args...))
}

// kernelConfig is the per-instance kernel configuration; every rebuild
// of the instance (including replacement reboots) uses the same one.
func (in *instance) kernelConfig() kernel.Config {
	gp := fleetGuardPolicy()
	if in.cfg.GuardPolicy != nil {
		gp = *in.cfg.GuardPolicy
	}
	kcfg := kernel.Config{
		ZeroTxnCosts:    true,
		Seed:            mix(in.cfg.Seed, int64(in.id)),
		GuardPolicy:     &gp,
		CheckpointEvery: time.Hour, // explicit round-end checkpoints only
		CheckpointRing:  4,
		CheckpointDir:   in.dir,
	}
	if in.cfg.CrashFaults {
		// The chaos campaign's crash cadence panics roughly once per
		// round — right for a torture chamber, wrong for a fleet that
		// should mostly serve. Thin the seed-derived rules so panics
		// punctuate the run instead of dominating it.
		rules := fault.NewCrashRules(kcfg.Seed, 1)
		for i := range rules {
			rules[i].EveryN *= 4
		}
		kcfg.FaultPlan = &fault.Plan{Seed: kcfg.Seed, Rules: rules}
	}
	return kcfg
}

// boot builds a fresh kernel+network for the instance slot.
func (in *instance) boot() {
	in.k = kernel.New(in.kernelConfig())
	in.n = netstk.New(in.k)
	in.n.BillSockets = true
	in.k.Tenants = in.treg
	in.treg.Adopt(in.k.Clock, in.k.Trace)
}

// tenantCount returns how many tenants the instance hosts.
func (in *instance) tenantCount() int {
	n := in.cfg.Tenants
	if in.cfg.Abusive {
		n++
	}
	return n
}

func (in *instance) port(ti int) int { return 8000 + ti }

// handlerSrc returns tenant ti's service source at its current image
// generation.
func (in *instance) handlerSrc(ti int) (name, src string) {
	tn := tenantName(in.cfg, ti)
	name = fmt.Sprintf("svc-%s-g%d", tn, in.gens[ti])
	if in.cfg.Abusive && ti == in.cfg.Tenants {
		return name, gobbleSrc(name)
	}
	return name, echoSrc(name)
}

// runInstance drives one instance slot through every round, including
// its scheduled death and replacement.
func runInstance(cfg Config, id int, dir string) *InstanceResult {
	in := &instance{
		cfg: cfg,
		id:  id,
		dir: dir,
		rng: rand.New(rand.NewSource(mix(cfg.Seed, int64(id)))),
		res: &InstanceResult{ID: id},
	}
	in.treg = tenant.New(nil, nil, cfg.TenantPolicy)
	nt := in.tenantCount()
	in.seqs = make([]int64, nt)
	in.gens = make([]int, nt)
	for ti := 0; ti < nt; ti++ {
		t := in.treg.Register(tenantName(cfg, ti))
		in.cells = append(in.cells, &TenantCell{Name: t.Name})
	}
	if cfg.Abusive {
		// The abusive tenant's socket grant is deliberately under its
		// arrival rate: the surplus is denied at accept, the §3.2
		// denial-not-degradation edge.
		in.treg.Lookup("abuser").Account.SetLimit(resource.Sockets, 2)
	}
	in.boot()

	// Death round: every instance dies once, at a seed-derived round in
	// [2, Rounds], and is replaced from its durable ring. Drawn before
	// any traffic so the schedule is part of the instance's seed stream.
	dieRound := 0
	if cfg.Rounds >= 2 {
		dieRound = 2 + in.rng.Intn(cfg.Rounds-1)
	}

	// Round 0 baseline: listeners up, first-generation services
	// installed, one durable checkpoint so the first panic (and the
	// first replacement) always has a restore point.
	for ti := 0; ti < nt; ti++ {
		in.n.Listen("tcp", in.port(ti))
	}
	in.installMissing()
	if err := in.k.Run(); err != nil {
		in.violate("baseline run: %v", err)
	}
	in.checkpoint("baseline")

	if in.k.Faults != nil {
		in.k.Faults.EnableCrash()
	}
	for round := 1; round <= cfg.Rounds; round++ {
		in.runRound(round)
		in.res.Rounds = round
		if round == dieRound {
			in.replace(round)
		}
	}

	in.audit()
	in.res.SocketDenials = in.n.Stats().SocketDenials
	in.res.Tenants = in.treg.Report()
	for _, h := range in.res.Tenants {
		in.res.Expulsions += h.Expulsions
	}
	for _, c := range in.cells {
		in.res.PerTenant = append(in.res.PerTenant, *c)
	}
	in.res.CommittedLines = len(in.committed)
	return in.res
}

// installMissing (re)installs each tenant's service behind its port
// when the port has no handlers — at boot, and after an expulsion or a
// restore dropped the graft. A banned tenant's install is refused, so
// its port stays dark.
func (in *instance) installMissing() {
	type job struct {
		ti   int
		name string
		src  string
	}
	var todo []job
	for ti := 0; ti < in.tenantCount(); ti++ {
		port := in.n.Listen("tcp", in.port(ti))
		if len(port.Point().Handlers()) > 0 {
			continue
		}
		tn := tenantName(in.cfg, ti)
		if !in.treg.CanInstall(tn) {
			continue
		}
		name, src := in.handlerSrc(ti)
		todo = append(todo, job{ti, name, src})
	}
	if len(todo) == 0 {
		return
	}
	in.procSeq++
	in.k.SpawnProcess(fmt.Sprintf("installer-%d", in.procSeq), 1, func(p *kernel.Process) {
		for _, j := range todo {
			tn := tenantName(in.cfg, j.ti)
			pointName := in.n.Listen("tcp", in.port(j.ti)).Point().Name
			g, err := p.BuildAndInstall(pointName, j.src, in.treg.InstallOptions(tn))
			if err != nil {
				in.violate("install %s for %s: %v", j.name, tn, err)
				continue
			}
			in.treg.BindGraft(tn, g.GuardKey())
		}
	})
}

// genArrivals produces the round's open-loop arrival sequence: each
// tenant contributes Arrivals requests (the abusive tenant twice that),
// interleaved by a weighted deterministic draw from the instance PRNG.
func (in *instance) genArrivals() []*arrival {
	remaining := make([]int, in.tenantCount())
	total := 0
	for ti := range remaining {
		remaining[ti] = in.cfg.Arrivals
		if in.cfg.Abusive && ti == in.cfg.Tenants {
			remaining[ti] = 2 * in.cfg.Arrivals
		}
		total += remaining[ti]
	}
	out := make([]*arrival, 0, total)
	for len(out) < total {
		pick := in.rng.Intn(total - len(out))
		for ti := range remaining {
			if pick < remaining[ti] {
				remaining[ti]--
				out = append(out, &arrival{tenant: ti, seq: in.seqs[ti]})
				in.seqs[ti]++
				break
			}
			pick -= remaining[ti]
		}
	}
	return out
}

// runRound drives one traffic round: reinstall dark ports, generate
// arrivals, admission-gate and connect them from a driver process, run
// to quiescence (containing any injected panics), classify every
// arrival, reap the round's connections, fold the supervisor ledger
// into the tenant registry, and commit the round ledger line with a
// durable checkpoint.
func (in *instance) runRound(round int) {
	in.installMissing()
	arrivals := in.genArrivals()
	// The open-loop driver retries after a contained panic: a recovery
	// kills every thread and rewinds to the last checkpoint, so
	// requests in flight at the crash are lost (classified failed), but
	// the arrivals the driver never reached are re-driven by a fresh
	// process — bounded, so a pathological seed cannot livelock the
	// round. Everything here is deterministic: the arrival list, the
	// admission sequence and the panic schedule all derive from the
	// instance seed.
	next := 0
	for attempt := 0; attempt < 4 && next < len(arrivals); attempt++ {
		start := next
		in.procSeq++
		in.k.SpawnProcess(fmt.Sprintf("driver-%d", in.procSeq), 1, func(p *kernel.Process) {
			for i := start; i < len(arrivals); i++ {
				a := arrivals[i]
				next = i + 1
				a.reached = true
				a.admitted = in.treg.Admit(tenantName(in.cfg, a.tenant), a.seq)
				if !a.admitted {
					continue
				}
				c, err := in.n.Connect(in.k.Sched, "tcp", in.port(a.tenant), []byte("GET / HTTP/1.0\r\n\r\n"))
				if err != nil {
					var le *resource.LimitError
					if errors.As(err, &le) {
						a.denied = true
					} else {
						in.violate("round %d connect %s: %v", round, tenantName(in.cfg, a.tenant), err)
					}
					continue
				}
				a.conn = c
				for y := 0; y < 8 && !c.Closed(); y++ {
					p.Thread.Yield()
				}
			}
		})
		recovered, err := in.k.RunRecovered()
		in.res.Recovered += recovered
		if err != nil {
			// An uncontainable panic: the machine is gone. Replace it
			// from the durable ring; the round's in-flight work is lost.
			in.replace(round)
			break
		}
		if recovered == 0 {
			break
		}
	}

	var served, shed, failed int64
	for _, a := range arrivals {
		cell := in.cells[a.tenant]
		switch {
		case a.reached && !a.admitted, a.denied:
			shed++
			cell.Shed++
		case a.conn != nil && a.conn.Closed() && len(a.conn.Response()) > 0:
			served++
			cell.Served++
		default:
			// Aborted handlers, dark (expelled) ports, requests the
			// crash destroyed before the driver reached them.
			failed++
			cell.Failed++
		}
		if a.conn != nil {
			in.n.Teardown(a.conn)
		}
	}
	in.res.Served += served
	in.res.Shed += shed
	in.res.Failed += failed

	if in.k.Guard != nil {
		in.treg.Observe(in.k.Guard.Report())
	}
	line := fmt.Sprintf("fleet inst %d round %d: served=%d shed=%d failed=%d",
		in.id, round, served, shed, failed)
	in.k.Logf("%s", line)
	in.checkpoint(fmt.Sprintf("round %d", round))
	// The line is on the books only once the checkpoint that contains
	// it persisted; the audit holds the final log to exactly this set.
	in.committed = append(in.committed, line)
}

// checkpoint takes a durable checkpoint and surfaces persistence
// failures as audit violations.
func (in *instance) checkpoint(stage string) {
	in.k.Checkpoint()
	if err := in.k.Crash.PersistErr(); err != nil {
		in.violate("%s: persist: %v", stage, err)
	}
}

// replace is the self-healing path: the instance's kernel is abandoned
// where it stands and a fresh one is rebooted from the durable
// checkpoint ring. The tenant registry survives in the fleet layer —
// standing and billing carry over, Reattach splices the live tenant
// accounts into the restored grafts, and EpochReset re-baselines the
// ledger deltas against the replacement's fresh supervisor.
func (in *instance) replace(round int) {
	in.k.Shutdown()
	in.boot()
	if _, err := in.k.RestoreFromDisk(); err != nil {
		in.violate("round %d replacement: restore: %v", round, err)
		return
	}
	in.res.Reattached += in.treg.Reattach(in.k.Grafts)
	in.treg.EpochReset()
	in.res.Replacements++
	if in.k.Faults != nil {
		in.k.Faults.EnableCrash()
	}
	// No lost committed writes: every round line committed before the
	// death must be in the restored log.
	log := strings.Join(in.k.Log(), "\n")
	for _, line := range in.committed {
		if !strings.Contains(log, line) {
			in.violate("round %d replacement: committed line lost: %q", round, line)
		}
	}
}

// audit closes the instance's books: request conservation, durable
// ledger completeness, and drained tenant accounts (charges released at
// teardown land on the owning tenant and nowhere else — a residual
// here is either a leak or cross-tenant billing).
func (in *instance) audit() {
	var acc int64
	for _, c := range in.cells {
		acc += c.Served + c.Shed + c.Failed
	}
	perTenant := int64(in.cfg.Arrivals * in.cfg.Rounds)
	want := perTenant * int64(in.cfg.Tenants)
	if in.cfg.Abusive {
		want += 2 * perTenant
	}
	if acc != want {
		in.violate("request conservation: %d generated, %d accounted", want, acc)
	}
	log := strings.Join(in.k.Log(), "\n")
	for _, line := range in.committed {
		if !strings.Contains(log, line) {
			in.violate("committed line lost: %q", line)
		}
	}
	for _, t := range in.treg.Tenants() {
		for _, kind := range t.Account.Kinds() {
			if used := t.Account.Used(kind); used != 0 {
				in.violate("tenant %s account not drained: %s=%d", t.Name, kind, used)
			}
		}
	}
}

// Summary renders the fleet report: per-instance rows, the per-tenant ×
// per-instance table, totals and the audit verdict. Deterministic for a
// fixed configuration at any worker-pool size.
func (r *Result) Summary() string {
	var b strings.Builder
	nt := r.Cfg.Tenants
	if r.Cfg.Abusive {
		nt++
	}
	// No worker count here: the report is byte-identical at any
	// worker-pool size, and printing the pool would break exactly the
	// comparison that proves it.
	fmt.Fprintf(&b, "fleet: %d instances x %d rounds, %d tenants, seed %d\n",
		r.Cfg.Instances, r.Cfg.Rounds, nt, r.Cfg.Seed)
	fmt.Fprintf(&b, "  %4s %6s %5s %6s %7s %6s %7s %7s %6s %5s\n",
		"INST", "ROUNDS", "REPL", "RECOV", "SERVED", "SHED", "FAILED", "DENIED", "EXPEL", "REBIND")
	for _, ir := range r.Instances {
		fmt.Fprintf(&b, "  %4d %6d %5d %6d %7d %6d %7d %7d %6d %5d\n",
			ir.ID, ir.Rounds, ir.Replacements, ir.Recovered, ir.Served, ir.Shed,
			ir.Failed, ir.SocketDenials, ir.Expulsions, ir.Reattached)
	}
	fmt.Fprintf(&b, "tenant x instance:\n")
	fmt.Fprintf(&b, "  %-12s %4s %-9s %7s %6s %7s %5s\n",
		"TENANT", "INST", "STATE", "SERVED", "SHED", "FAILED", "EXPEL")
	for _, ir := range r.Instances {
		state := make(map[string]tenant.Health, len(ir.Tenants))
		for _, h := range ir.Tenants {
			state[h.Name] = h
		}
		for _, c := range ir.PerTenant {
			h := state[c.Name]
			fmt.Fprintf(&b, "  %-12s %4d %-9s %7d %6d %7d %5d\n",
				c.Name, ir.ID, h.State, c.Served, c.Shed, c.Failed, h.Expulsions)
		}
	}
	fmt.Fprintf(&b, "totals: arrivals=%d served=%d shed=%d failed=%d\n",
		r.Arrivals, r.Served, r.Shed, r.Failed)
	if r.Clean() {
		fmt.Fprintf(&b, "audit: clean\n")
	} else {
		fmt.Fprintf(&b, "audit: %d violations\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
		}
	}
	return b.String()
}
