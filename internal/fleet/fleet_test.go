package fleet

import (
	"strings"
	"testing"

	"vino/internal/tenant"
)

// TestFleetSurvival is the acceptance run: crash faults armed, every
// instance scheduled to die once, and an abusive tenant in the mix. The
// audit must be clean, at least one instance must have been replaced
// from its durable ring, and the abusive tenant must walk the ladder to
// banned on every instance.
func TestFleetSurvival(t *testing.T) {
	res, err := Run(Config{
		Seed:        7,
		Instances:   2,
		Tenants:     2,
		Abusive:     true,
		Rounds:      6,
		Arrivals:    4,
		Workers:     2,
		CrashFaults: true,
		Dir:         t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("audit violations:\n%s", strings.Join(res.Violations, "\n"))
	}
	replacements, expulsions, banned := 0, 0, 0
	for _, ir := range res.Instances {
		replacements += ir.Replacements
		expulsions += ir.Expulsions
		for _, h := range ir.Tenants {
			if h.Name == "abuser" {
				if h.State == tenant.Active {
					t.Errorf("inst %d: abusive tenant never escalated:\n%s", ir.ID, res.Summary())
				}
				if h.State == tenant.Banned {
					banned++
				}
			} else if h.State == tenant.Banned {
				t.Errorf("inst %d: well-behaved tenant %s banned", ir.ID, h.Name)
			}
		}
	}
	if banned < 1 {
		t.Errorf("abusive tenant banned on no instance:\n%s", res.Summary())
	}
	if replacements < 1 {
		t.Errorf("no instance was replaced from its durable ring:\n%s", res.Summary())
	}
	if expulsions < 1 {
		t.Errorf("no graft expulsions observed:\n%s", res.Summary())
	}
	if res.Served == 0 {
		t.Errorf("no request was served:\n%s", res.Summary())
	}
	if res.Shed == 0 {
		t.Errorf("nothing was shed despite throttling and socket caps:\n%s", res.Summary())
	}
}

// TestFleetDeterminism pins the worker-pool contract: the same (seed,
// instances, tenants) tuple renders a byte-identical report whether the
// instances run one at a time or all at once.
func TestFleetDeterminism(t *testing.T) {
	run := func(workers int) string {
		res, err := Run(Config{
			Seed:        7,
			Instances:   3,
			Tenants:     2,
			Abusive:     true,
			Rounds:      5,
			Arrivals:    3,
			Workers:     workers,
			CrashFaults: true,
			Dir:         t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary()
	}
	a, b := run(1), run(4)
	if a != b {
		t.Fatalf("summary differs between workers=1 and workers=4:\n--- workers=1\n%s\n--- workers=4\n%s", a, b)
	}
	if !strings.Contains(a, "audit: clean") {
		t.Fatalf("audit not clean:\n%s", a)
	}
}

// TestFleetNoFaults: with the crash plane dark the fleet still
// replaces each instance at its scheduled death round, and every
// well-behaved request is served.
func TestFleetNoFaults(t *testing.T) {
	res, err := Run(Config{
		Seed:      3,
		Instances: 2,
		Tenants:   2,
		Rounds:    4,
		Arrivals:  3,
		Dir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("audit violations:\n%s", strings.Join(res.Violations, "\n"))
	}
	for _, ir := range res.Instances {
		if ir.Replacements != 1 {
			t.Errorf("inst %d: replacements = %d, want 1", ir.ID, ir.Replacements)
		}
	}
	if res.Shed != 0 || res.Failed != 0 {
		t.Errorf("well-behaved fleet shed=%d failed=%d, want 0/0:\n%s", res.Shed, res.Failed, res.Summary())
	}
	if res.Served != res.Arrivals {
		t.Errorf("served = %d, want all %d arrivals", res.Served, res.Arrivals)
	}
}
