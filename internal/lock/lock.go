// Package lock implements VINO's lock manager for time-constrained
// resources (§3.2 of the paper).
//
// Every lockable resource belongs to a class carrying a contention
// time-out: how long a lock on that resource may be held *while others
// wait for it*. A lock held without contention is harmless and never
// times out. When a waiter's time-out expires and a conflicting holder is
// executing a transaction, that transaction is aborted — even if the lock
// was acquired before the graft was invoked. Time-out expiry is quantised
// to the 10 ms system clock tick, reproducing the paper's §4.5
// observation that a transaction times out between 10 and 20 ms after the
// request.
//
// The manager supports two implementations of the grant decision,
// mirroring the paper's §6 lesson about fine-grained extensibility
// (Figures 4 and 5): a hard-coded reader-priority fast path, and a
// policy-encapsulated path where every decision point (is this request
// grantable? where does a waiter queue?) is a call through an interface.
// The indirection is the ablation measured by BenchmarkLockManagerAblation.
package lock

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"time"

	"vino/internal/crash"
	"vino/internal/fault"
	"vino/internal/sched"
	"vino/internal/simclock"
	"vino/internal/trace"
)

// Mode is a lock acquisition mode.
type Mode int

const (
	// Shared allows concurrent holders (readers).
	Shared Mode = iota
	// Exclusive admits a single holder (writer).
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// FuncCallCycles is the cost of one function call on the paper's test
// machine: "function calls typically cost approximately 35 cycles" (§6).
// The policy-encapsulated lock manager charges this per decision point.
const FuncCallCycles = 35

// TimeoutError is the abort reason delivered to a holder whose lock has
// been contended past its class time-out.
type TimeoutError struct {
	LockName string
	Class    string
	Timeout  time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("lock: %q (class %s) held under contention past %v", e.LockName, e.Class, e.Timeout)
}

// ErrNotHeld reports a release of a lock the thread does not hold.
var ErrNotHeld = errors.New("lock: released by non-holder")

// Request describes an acquisition attempt; policies see Requests for
// holders and waiters.
type Request struct {
	Thread *sched.Thread
	Mode   Mode
}

// Policy encapsulates the grant decisions, as in the paper's Figure 5
// general get_lock. Implementations must be deterministic.
type Policy interface {
	// Grantable reports whether req may be granted now given the current
	// holders and the wait queue. The default (Figure 4) policy implements
	// reader priority: grantable iff no conflicting holder, ignoring
	// waiters.
	Grantable(req Request, holders []Request, waiters []Request) bool
	// InsertWaiter returns the queue position (0..len(waiters)) at which
	// req should wait. The default appends.
	InsertWaiter(req Request, waiters []Request) int
}

// ReaderPriority is the default policy: grant when no conflicting holder
// exists; FIFO wait queue. It reproduces the hard-coded Figure 4
// behaviour through the Figure 5 interface.
type ReaderPriority struct{}

// Grantable implements Policy.
func (ReaderPriority) Grantable(req Request, holders []Request, waiters []Request) bool {
	return !conflictsWithHolders(req, holders)
}

// InsertWaiter implements Policy.
func (ReaderPriority) InsertWaiter(req Request, waiters []Request) int { return len(waiters) }

func conflictsWithHolders(req Request, holders []Request) bool {
	for _, h := range holders {
		if h.Thread == req.Thread {
			continue
		}
		if h.Mode == Exclusive || req.Mode == Exclusive {
			return true
		}
	}
	return false
}

// Class groups locks that protect the same kind of resource and therefore
// share a contention time-out. "A page may be locked for tens of
// milliseconds during I/O while a free space bitmap should be locked for
// only a few hundreds of instructions" (§3.2).
type Class struct {
	Name string
	// Timeout is how long a conflicting holder may make this class's
	// waiters wait before its transaction is aborted.
	Timeout time.Duration
	// Policy, when non-nil, routes grant decisions through the
	// encapsulated (Figure 5) path. Nil uses the hard-coded fast path.
	Policy Policy
	// AcquireCost and ReleaseCost are the CPU charged to the locking
	// thread, modelling the paper's measured lock overheads.
	AcquireCost time.Duration
	ReleaseCost time.Duration
}

type hold struct {
	mode  Mode
	count int // recursive acquisitions
}

type waiter struct {
	req     Request
	stamp   simclock.Stamp // position in the global event order
	granted bool
	timeout simclock.EventID
	hasTO   bool
}

// Manager owns all locks and the abort plumbing. One manager per kernel.
type Manager struct {
	clock *simclock.Clock
	// HolderInTxn reports whether a thread is currently executing a
	// transaction; only such holders are aborted on time-out. Wired up by
	// the transaction layer.
	HolderInTxn func(*sched.Thread) bool
	// Trace, when set, records contention time-outs.
	Trace *trace.Buffer
	// Faults, when set, is consulted at the lock-release crash site.
	// Nil-safe and free unless the injector's crash gate is armed.
	Faults *fault.Injector
	// GenSource, when set, supplies the crash manager's checkpoint
	// generation so lock-table growth can be dirty-flagged.
	GenSource func() uint64

	locks        []*Lock // every lock ever created, for invariant audits
	modGen       uint64  // generation of the last lock-table change
	stats        Stats
	lastDeadlock []WaitEdge
}

// WaitEdge is one holder → waiter edge of a wait-for-graph snapshot:
// Waiter is blocked on Lock, which Holder holds in a conflicting mode.
type WaitEdge struct {
	Holder string // holding thread's name
	Waiter string // waiting thread's name
	Lock   string // lock name
}

func (e WaitEdge) String() string {
	return fmt.Sprintf("%s->%s on %s", e.Holder, e.Waiter, e.Lock)
}

// Stats counts lock-manager events for the experiment reports.
type Stats struct {
	Acquisitions  int64
	Contentions   int64
	Timeouts      int64
	AbortsRaised  int64
	PolicyCalls   int64
	UpgradeWaits  int64
	Releases      int64
	DeadlockBreak int64 // timeouts fired while the waiter also held locks
	// LastDeadlock is the wait-for-graph snapshot captured at the most
	// recent DeadlockBreak: every holder → waiter edge in the manager
	// at the instant the timeout fired, in deterministic (lock
	// creation, queue position, holder order) order.
	LastDeadlock []WaitEdge
}

// NewManager creates a lock manager over clock.
func NewManager(clock *simclock.Clock) *Manager {
	return &Manager{clock: clock}
}

// Stats returns a copy of the manager's counters.
func (m *Manager) Stats() Stats {
	s := m.stats
	s.LastDeadlock = append([]WaitEdge(nil), m.lastDeadlock...)
	return s
}

// waitForGraph snapshots every holder → waiter edge in the manager, in
// deterministic order: locks in creation order, waiters in queue order,
// holders in acquisition order. Only conflicting pairs form edges — a
// reader waiting behind readers is not blocked by them.
func (m *Manager) waitForGraph() []WaitEdge {
	var edges []WaitEdge
	for _, l := range m.locks {
		for _, w := range l.waiters {
			for _, ht := range l.order {
				h := l.holders[ht]
				if h == nil || ht == w.req.Thread {
					continue
				}
				if h.mode != Exclusive && w.req.Mode != Exclusive {
					continue
				}
				edges = append(edges, WaitEdge{Holder: ht.Name(), Waiter: w.req.Thread.Name(), Lock: l.name})
			}
		}
	}
	return edges
}

// recordDeadlock captures the forensic snapshot when a timeout fires on
// a waiter that itself holds locks (a broken wait cycle) and emits a
// deadlock trace event naming every edge.
func (m *Manager) recordDeadlock(l *Lock) {
	m.stats.DeadlockBreak++
	m.lastDeadlock = m.waitForGraph()
	parts := make([]string, len(m.lastDeadlock))
	for i, e := range m.lastDeadlock {
		parts[i] = e.String()
	}
	m.Trace.Emit(m.clock.Now(), trace.Deadlock, l.name,
		fmt.Sprintf("wait-for: %s", strings.Join(parts, "; ")))
}

// Lock is one lockable resource instance.
type Lock struct {
	name    string
	class   *Class
	m       *Manager
	holders map[*sched.Thread]*hold
	order   []*sched.Thread // holder order, for deterministic iteration
	waiters []*waiter
}

// NewLock creates a lock named name in class c.
func (m *Manager) NewLock(name string, c *Class) *Lock {
	if c == nil {
		panic("lock: nil class")
	}
	l := &Lock{name: name, class: c, m: m, holders: make(map[*sched.Thread]*hold)}
	m.locks = append(m.locks, l)
	if m.GenSource != nil {
		m.modGen = m.GenSource()
	}
	return l
}

// Outstanding returns the names of every lock that still has a holder
// or a queued waiter. The chaos harness asserts it is empty after every
// abort: an abort that leaks a lock is exactly the wedge the paper's
// two-phase release exists to prevent.
func (m *Manager) Outstanding() []string {
	var out []string
	for _, l := range m.locks {
		if len(l.holders) > 0 || len(l.waiters) > 0 {
			out = append(out, l.name)
		}
	}
	return out
}

// Idle reports whether no lock in the manager is held or waited on.
func (m *Manager) Idle() bool { return len(m.Outstanding()) == 0 }

// Entangled returns the names of every lock t holds that another
// thread also holds or waits on. Domain-scoped crash recovery consults
// it before rolling back only t's state: a conflicting party on one of
// t's locks means the rollback's effects cross domain boundaries, and
// recovery must widen to the whole kernel.
func (m *Manager) Entangled(t *sched.Thread) []string {
	var out []string
	for _, l := range m.locks {
		if l.holders[t] == nil {
			continue
		}
		if len(l.holders) > 1 || len(l.waiters) > 0 {
			out = append(out, l.name)
		}
	}
	return out
}

// PurgeThread force-releases every hold and queued wait t still owns.
// Domain-scoped crash recovery calls it for the dead offender after
// its orphaned transactions are rolled back, so locks acquired outside
// transaction registration (direct Acquire calls) cannot outlive the
// thread. Releases go through the normal grant path, so surviving
// waiters are woken.
func (m *Manager) PurgeThread(t *sched.Thread) {
	for _, l := range m.locks {
		for _, w := range append([]*waiter(nil), l.waiters...) {
			if w.req.Thread == t {
				if w.hasTO {
					m.clock.Cancel(w.timeout)
					w.hasTO = false
				}
				l.removeWaiter(w)
			}
		}
		l.ReleaseAll(t)
	}
}

// Name returns the lock's diagnostic name.
func (l *Lock) Name() string { return l.name }

// Class returns the lock's class.
func (l *Lock) Class() *Class { return l.class }

// HeldBy reports whether t holds the lock in any mode.
func (l *Lock) HeldBy(t *sched.Thread) bool { return l.holders[t] != nil }

// HolderCount returns the number of distinct holding threads.
func (l *Lock) HolderCount() int { return len(l.holders) }

// WaiterCount returns the number of queued waiters.
func (l *Lock) WaiterCount() int { return len(l.waiters) }

// holderReqs materialises the holder set for policy calls.
func (l *Lock) holderReqs() []Request {
	out := make([]Request, 0, len(l.order))
	for _, t := range l.order {
		if h := l.holders[t]; h != nil {
			out = append(out, Request{Thread: t, Mode: h.mode})
		}
	}
	return out
}

func (l *Lock) waiterReqs() []Request {
	out := make([]Request, 0, len(l.waiters))
	for _, w := range l.waiters {
		out = append(out, w.req)
	}
	return out
}

// grantableNow decides whether req can be granted, via the fast path or
// the policy path depending on the class.
func (l *Lock) grantableNow(req Request) bool {
	if p := l.class.Policy; p != nil {
		l.m.stats.PolicyCalls++
		if req.Thread != nil {
			req.Thread.ChargeCycles(FuncCallCycles)
		}
		return p.Grantable(req, l.holderReqs(), l.waiterReqs())
	}
	// Figure 4 hard-coded path: "if the lock is not held in a conflicting
	// mode by anyone else, grant it" — reader priority, waiters ignored.
	return !conflictsWithHolders(req, l.holderReqs())
}

func (l *Lock) insertWaiter(w *waiter) {
	w.stamp = l.m.clock.Stamp()
	// Default ordering is the global event order (time, CPU, sequence),
	// not raw arrival order: under SMP a waiter enqueued by a CPU whose
	// local frontier lags joined the queue at an earlier virtual instant
	// than one enqueued later in wall order by a CPU that ran ahead.
	// On one CPU stamps increase monotonically, so this is plain append.
	pos := len(l.waiters)
	for pos > 0 && w.stamp.Less(l.waiters[pos-1].stamp) {
		pos--
	}
	if p := l.class.Policy; p != nil {
		l.m.stats.PolicyCalls++
		if w.req.Thread != nil {
			w.req.Thread.ChargeCycles(FuncCallCycles)
		}
		pos = p.InsertWaiter(w.req, l.waiterReqs())
		if pos < 0 || pos > len(l.waiters) {
			pos = len(l.waiters)
		}
	}
	l.waiters = append(l.waiters, nil)
	copy(l.waiters[pos+1:], l.waiters[pos:])
	l.waiters[pos] = w
}

func (l *Lock) removeWaiter(w *waiter) {
	for i, x := range l.waiters {
		if x == w {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			return
		}
	}
}

func (l *Lock) addHolder(t *sched.Thread, mode Mode) {
	if h := l.holders[t]; h != nil {
		h.count++
		if mode == Exclusive {
			h.mode = Exclusive
		}
		return
	}
	l.holders[t] = &hold{mode: mode, count: 1}
	l.order = append(l.order, t)
	heldLocksAdd(t, l.name)
}

// heldLocksAdd and heldLocksRemove maintain a per-thread list of held
// lock names in thread-local storage, used for deadlock diagnostics.
func heldLocksAdd(t *sched.Thread, name string) {
	hl, _ := t.Local("heldLocks").([]string)
	t.SetLocal("heldLocks", append(hl, name))
}

func heldLocksRemove(t *sched.Thread, name string) {
	hl, _ := t.Local("heldLocks").([]string)
	for i, n := range hl {
		if n == name {
			hl = append(hl[:i], hl[i+1:]...)
			break
		}
	}
	if len(hl) == 0 {
		t.SetLocal("heldLocks", nil)
		return
	}
	t.SetLocal("heldLocks", hl)
}

// Acquire takes the lock for t in the given mode, blocking under
// contention. Recursive acquisition by the same thread is counted. An
// upgrade (shared held, exclusive requested) waits for other holders to
// drain. If the thread is aborted while waiting (its own transaction
// timed out elsewhere), Acquire unwinds via the sched.Abort panic with
// the waiter safely dequeued.
func (l *Lock) Acquire(t *sched.Thread, mode Mode) {
	if t == nil {
		panic("lock: Acquire with nil thread")
	}
	if c := l.class.AcquireCost; c > 0 {
		t.Charge(c)
	}
	// Recursive / upgrade handling.
	if h := l.holders[t]; h != nil {
		if mode == Shared || h.mode == Exclusive {
			h.count++
			l.m.stats.Acquisitions++
			return
		}
		// Upgrade: wait until we are the only holder.
		l.m.stats.UpgradeWaits++
	}
	req := Request{Thread: t, Mode: mode}
	if l.grantableNow(req) {
		if h := l.holders[t]; h != nil { // completing an upgrade
			h.mode = Exclusive
			h.count++
			l.m.stats.Acquisitions++
			return
		}
		l.addHolder(t, mode)
		l.m.stats.Acquisitions++
		return
	}
	l.m.stats.Contentions++
	w := &waiter{req: req}
	l.insertWaiter(w)
	completed := false
	defer func() {
		if w.hasTO {
			l.m.clock.Cancel(w.timeout)
			w.hasTO = false
		}
		if !w.granted {
			l.removeWaiter(w)
		} else if !completed {
			// Aborted between grant and return: the hold was installed by
			// grantWaiters but the caller will never see it, so give it
			// back before unwinding. The grant still counts as an
			// acquisition so the books stay balanced with its release.
			l.m.stats.Acquisitions++
			l.ReleaseAll(t)
		}
	}()
	for !w.granted {
		l.armTimeout(w)
		t.Block("lock " + l.name) // panics on abort; defer above cleans up
	}
	if h := l.holders[t]; h != nil && mode == Exclusive {
		h.mode = Exclusive
	}
	// Counted only now: an acquisition is a grant, so an aborted wait
	// never unbalances the acquire/release books.
	l.m.stats.Acquisitions++
	completed = true
}

// TryAcquire takes the lock only if immediately available.
func (l *Lock) TryAcquire(t *sched.Thread, mode Mode) bool {
	if h := l.holders[t]; h != nil && (mode == Shared || h.mode == Exclusive) {
		h.count++
		l.m.stats.Acquisitions++
		return true
	}
	req := Request{Thread: t, Mode: mode}
	if l.holders[t] == nil && l.grantableNow(req) {
		l.addHolder(t, mode)
		l.m.stats.Acquisitions++
		return true
	}
	return false
}

// armTimeout schedules the contention time-out for a waiter, quantised to
// the system clock tick (§4.5).
func (l *Lock) armTimeout(w *waiter) {
	if w.hasTO {
		return
	}
	d := l.class.Timeout
	if d <= 0 {
		d = simclock.TickInterval
	}
	w.timeout = l.m.clock.AtNextTick(d, func() {
		w.hasTO = false
		if w.granted {
			return
		}
		l.m.stats.Timeouts++
		l.m.Trace.Emit(l.m.clock.Now(), trace.LockTimeout, l.name,
			fmt.Sprintf("class %s after %v", l.class.Name, l.class.Timeout))
		if len(w.lockedByWaiterLocks()) > 0 {
			l.m.recordDeadlock(l)
		}
		l.abortConflictingHolders(w)
		// Re-arm: if no holder could be aborted (none in a transaction),
		// the waiter keeps waiting and we check again next interval.
		if !w.granted {
			l.armTimeout(w)
		}
	})
	w.hasTO = true
}

// lockedByWaiterLocks is a diagnostic helper: a waiter that itself holds
// locks and then times out indicates a (broken) deadlock.
func (w *waiter) lockedByWaiterLocks() []string {
	if w.req.Thread == nil {
		return nil
	}
	if hl, ok := w.req.Thread.Local("heldLocks").([]string); ok {
		return hl
	}
	return nil
}

// abortConflictingHolders aborts the transaction of every holder that
// conflicts with the waiter and is executing a transaction.
func (l *Lock) abortConflictingHolders(w *waiter) {
	reason := &TimeoutError{LockName: l.name, Class: l.class.Name, Timeout: l.class.Timeout}
	for _, t := range append([]*sched.Thread(nil), l.order...) {
		h := l.holders[t]
		if h == nil || t == w.req.Thread {
			continue
		}
		if h.mode != Exclusive && w.req.Mode != Exclusive {
			continue // no conflict between readers
		}
		if l.m.HolderInTxn != nil && l.m.HolderInTxn(t) {
			l.m.stats.AbortsRaised++
			t.RequestAbort(reason)
		}
	}
}

// Release drops one level of t's hold. When the last hold drops, waiting
// requests are granted per the class policy and their threads woken.
func (l *Lock) Release(t *sched.Thread) error {
	h := l.holders[t]
	if h == nil {
		return fmt.Errorf("%w: %s by %s", ErrNotHeld, l.name, t.Name())
	}
	// Crash site: a panic here strikes after the hold is committed to
	// being released but before any bookkeeping — the holder entry,
	// wait queue and waiter timeouts are left exactly as they were, a
	// wedged lock only checkpoint restore can clear.
	l.m.Faults.MaybeCrash(crash.SiteLock, "")
	l.m.stats.Releases++
	if c := l.class.ReleaseCost; c > 0 && t.State() == sched.StateRunning && t.Scheduler().Current() == t {
		t.Charge(c)
	}
	h.count--
	if h.count > 0 {
		return nil
	}
	delete(l.holders, t)
	for i, x := range l.order {
		if x == t {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	heldLocksRemove(t, l.name)
	l.grantWaiters()
	return nil
}

// ReleaseAll drops every hold t has on the lock (used by transaction
// abort, which releases in one sweep).
func (l *Lock) ReleaseAll(t *sched.Thread) {
	if h := l.holders[t]; h != nil {
		h.count = 1
		_ = l.Release(t)
	}
}

// grantWaiters promotes as many queued waiters as the policy allows.
func (l *Lock) grantWaiters() {
	for len(l.waiters) > 0 {
		w := l.waiters[0]
		if !l.grantableForGrantPass(w.req) {
			return
		}
		l.waiters = l.waiters[1:]
		w.granted = true
		if w.hasTO {
			l.m.clock.Cancel(w.timeout)
			w.hasTO = false
		}
		l.addHolder(w.req.Thread, w.req.Mode)
		w.req.Thread.Wake()
	}
}

// lockSnap is the lock manager's checkpoint image. Holder and waiter
// state is deliberately NOT captured: checkpoints are taken at
// quiescent points where no simulated thread holds or waits on any
// lock, and the threads themselves die in the crash anyway. What must
// be restored is the lock *population* — locks created after the
// checkpoint belong to objects (open files, address spaces) that the
// restore discards.
type lockSnap struct {
	numLocks int
}

// CrashName implements crash.Snapshotter.
func (m *Manager) CrashName() string { return "locks" }

// CrashSnapshot implements crash.Snapshotter.
func (m *Manager) CrashSnapshot() any {
	return &lockSnap{numLocks: len(m.locks)}
}

// CrashRestore implements crash.Snapshotter: the lock table is trimmed
// to the checkpoint's population and every hold and wait — all owned by
// threads that died with the crash — is force-cleared, leak included.
// Lifetime counters are kept: the crash happened and its cost is real.
func (m *Manager) CrashRestore(snap any) {
	s := snap.(*lockSnap)
	if s.numLocks < len(m.locks) {
		m.locks = m.locks[:s.numLocks]
	}
	for _, l := range m.locks {
		l.holders = make(map[*sched.Thread]*hold)
		l.order = nil
		for _, w := range l.waiters {
			if w.hasTO {
				m.clock.Cancel(w.timeout)
				w.hasTO = false
			}
		}
		l.waiters = nil
	}
}

// CrashDelta implements crash.DeltaSnapshotter: the lock image is the
// table population alone, which only changes when a lock is created,
// so an unchanged table reports nil and the checkpoint keeps the
// previous image.
func (m *Manager) CrashDelta(sinceGen uint64) any {
	if m.GenSource != nil && m.modGen <= sinceGen {
		return nil
	}
	return m.CrashSnapshot()
}

// CrashMerge implements crash.DeltaSnapshotter: a non-nil delta is a
// full image and replaces the base.
func (m *Manager) CrashMerge(base, delta any) any { return delta }

// lockExport is the lock manager's durable image. Locks themselves are
// owned by the subsystems that create them (files, address spaces, the
// kernel) and are re-created when those subsystems import their own
// state, so the portable payload is the lifetime counters and the last
// deadlock forensic — the part of the manager's history that a reboot
// would otherwise erase.
type lockExport struct {
	Stats Stats
}

// CrashExport implements crash.Exporter.
func (m *Manager) CrashExport() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&lockExport{Stats: m.Stats()})
	return buf.Bytes(), err
}

// CrashImport implements crash.Exporter.
func (m *Manager) CrashImport(data []byte) error {
	var e lockExport
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return err
	}
	m.lastDeadlock = e.Stats.LastDeadlock
	e.Stats.LastDeadlock = nil
	m.stats = e.Stats
	return nil
}

// grantableForGrantPass is grantableNow without charging the (possibly
// not-current) waiter thread for policy calls; the grant happens on the
// releaser's time.
func (l *Lock) grantableForGrantPass(req Request) bool {
	if p := l.class.Policy; p != nil {
		l.m.stats.PolicyCalls++
		return p.Grantable(req, l.holderReqs(), l.waiterReqs())
	}
	return !conflictsWithHolders(req, l.holderReqs())
}
