package lock

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"vino/internal/sched"
	"vino/internal/simclock"
	"vino/internal/trace"
)

var testClass = &Class{Name: "test", Timeout: 50 * time.Millisecond}

func newEnv() (*sched.Scheduler, *Manager) {
	s := sched.New(simclock.New(0))
	s.SwitchCost = 0
	return s, NewManager(s.Clock())
}

func TestUncontendedAcquireRelease(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("a", testClass)
	s.Spawn("t", func(th *sched.Thread) {
		l.Acquire(th, Exclusive)
		if !l.HeldBy(th) {
			t.Error("not held after acquire")
		}
		if err := l.Release(th); err != nil {
			t.Errorf("Release: %v", err)
		}
		if l.HeldBy(th) {
			t.Error("held after release")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Acquisitions != 1 || st.Contentions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSharedHoldersCoexist(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("a", testClass)
	inside := 0
	maxInside := 0
	for i := 0; i < 3; i++ {
		s.Spawn("reader", func(th *sched.Thread) {
			l.Acquire(th, Shared)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			th.Yield()
			inside--
			_ = l.Release(th)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 3 {
		t.Fatalf("max concurrent readers = %d, want 3", maxInside)
	}
}

func TestExclusiveExcludes(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("a", testClass)
	var order []string
	s.Spawn("w1", func(th *sched.Thread) {
		l.Acquire(th, Exclusive)
		order = append(order, "w1-in")
		th.Yield()
		th.Yield()
		order = append(order, "w1-out")
		_ = l.Release(th)
	})
	s.Spawn("w2", func(th *sched.Thread) {
		th.Yield() // let w1 get it first
		l.Acquire(th, Exclusive)
		order = append(order, "w2-in")
		_ = l.Release(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w1-in", "w1-out", "w2-in"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if m.Stats().Contentions != 1 {
		t.Fatalf("contentions = %d, want 1", m.Stats().Contentions)
	}
}

func TestRecursiveAcquire(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("a", testClass)
	s.Spawn("t", func(th *sched.Thread) {
		l.Acquire(th, Exclusive)
		l.Acquire(th, Exclusive)
		_ = l.Release(th)
		if !l.HeldBy(th) {
			t.Error("recursive lock released too early")
		}
		_ = l.Release(th)
		if l.HeldBy(th) {
			t.Error("still held after matching releases")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeWhenSoleHolder(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("a", testClass)
	s.Spawn("t", func(th *sched.Thread) {
		l.Acquire(th, Shared)
		l.Acquire(th, Exclusive) // upgrade in place
		if h := l.holders[th]; h.mode != Exclusive {
			t.Error("upgrade did not take")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseByNonHolder(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("a", testClass)
	s.Spawn("t", func(th *sched.Thread) {
		if err := l.Release(th); !errors.Is(err, ErrNotHeld) {
			t.Errorf("Release = %v, want ErrNotHeld", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTimeoutAbortsHolderInTxn is the heart of §3.2: a graft holds a
// contested lock in a transaction and spins; the waiter's time-out aborts
// the holder's transaction.
func TestTimeoutAbortsHolderInTxn(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("resourceA", &Class{Name: "res", Timeout: 30 * time.Millisecond})
	inTxn := make(map[*sched.Thread]bool)
	m.HolderInTxn = func(th *sched.Thread) bool { return inTxn[th] }

	var abortedAt time.Duration
	var gotWaiter bool
	hog := s.Spawn("hog", func(th *sched.Thread) {
		defer func() {
			if a, ok := recover().(*sched.Abort); ok {
				var te *TimeoutError
				if !errors.As(a.Reason, &te) {
					t.Errorf("abort reason = %v, want TimeoutError", a.Reason)
				}
				abortedAt = th.Scheduler().Clock().Now()
				l.ReleaseAll(th) // what the txn layer would do
			}
		}()
		inTxn[th] = true
		l.Acquire(th, Exclusive)
		for { // lock(resourceA); while(1); — the paper's malicious fragment
			th.Charge(time.Millisecond)
		}
	})
	_ = hog
	s.Spawn("victim", func(th *sched.Thread) {
		th.Charge(time.Millisecond) // let hog acquire first
		l.Acquire(th, Exclusive)
		gotWaiter = true
		_ = l.Release(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotWaiter {
		t.Fatal("waiter never obtained the lock")
	}
	// Time-outs are tick-quantised: the abort lands within [timeout,
	// timeout+2 ticks] of the contention.
	if abortedAt < 30*time.Millisecond || abortedAt > 60*time.Millisecond {
		t.Fatalf("holder aborted at %v, want ~30-60ms", abortedAt)
	}
	st := m.Stats()
	if st.Timeouts == 0 || st.AbortsRaised == 0 {
		t.Fatalf("stats = %+v, want timeout and abort recorded", st)
	}
}

// TestUncontendedHoldNeverTimesOut: "if a graft holds a lock that no
// other thread requests, continuing to hold that lock does not affect the
// rest of the system" (§3.2).
func TestUncontendedHoldNeverTimesOut(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("a", &Class{Name: "res", Timeout: 10 * time.Millisecond})
	m.HolderInTxn = func(*sched.Thread) bool { return true }
	aborted := false
	s.Spawn("holder", func(th *sched.Thread) {
		defer func() {
			if recover() != nil {
				aborted = true
			}
		}()
		l.Acquire(th, Exclusive)
		th.Sleep(500 * time.Millisecond) // hold for 50x the timeout
		_ = l.Release(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if aborted {
		t.Fatal("uncontended holder was aborted")
	}
	if m.Stats().Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0", m.Stats().Timeouts)
	}
}

// TestHolderNotInTxnNotAborted: only transaction-running holders can be
// aborted; others make the waiter keep waiting.
func TestHolderNotInTxnNotAborted(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("a", &Class{Name: "res", Timeout: 10 * time.Millisecond})
	m.HolderInTxn = func(*sched.Thread) bool { return false }
	got := false
	s.Spawn("holder", func(th *sched.Thread) {
		l.Acquire(th, Exclusive)
		th.Sleep(100 * time.Millisecond)
		_ = l.Release(th)
	})
	s.Spawn("waiter", func(th *sched.Thread) {
		th.Charge(time.Millisecond)
		l.Acquire(th, Exclusive)
		got = true
		_ = l.Release(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("waiter starved")
	}
	if m.Stats().AbortsRaised != 0 {
		t.Fatal("abort raised against non-txn holder")
	}
	if m.Stats().Timeouts == 0 {
		t.Fatal("timeout should still fire and re-arm")
	}
}

// TestDeadlockBrokenByTimeout: "time-out based locking also provides an
// implicit mechanism for breaking deadlocks" (§3.2).
func TestDeadlockBrokenByTimeout(t *testing.T) {
	s, m := newEnv()
	// Different per-class time-outs (as the paper prescribes:
	// "reasonable time-out intervals must be determined on a
	// per-resource-type basis") make the break deterministic: the waiter
	// on the short-timeout lock fires first and aborts the other thread.
	la := m.NewLock("A", &Class{Name: "fast", Timeout: 20 * time.Millisecond})
	lb := m.NewLock("B", &Class{Name: "slow", Timeout: 60 * time.Millisecond})
	inTxn := make(map[*sched.Thread]bool)
	m.HolderInTxn = func(th *sched.Thread) bool { return inTxn[th] }
	finished := 0
	mk := func(name string, first, second *Lock) {
		s.Spawn(name, func(th *sched.Thread) {
			defer func() {
				if _, ok := recover().(*sched.Abort); ok {
					first.ReleaseAll(th)
					second.ReleaseAll(th)
				}
			}()
			inTxn[th] = true
			first.Acquire(th, Exclusive)
			th.Yield() // let the other thread take its first lock
			second.Acquire(th, Exclusive)
			finished++
			_ = second.Release(th)
			_ = first.Release(th)
		})
	}
	mk("t1", la, lb)
	mk("t2", lb, la)
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v (deadlock not broken)", err)
	}
	if finished == 0 {
		t.Fatal("neither thread made progress after deadlock break")
	}
	if m.Stats().DeadlockBreak == 0 {
		t.Fatal("deadlock break not recorded")
	}
}

func TestTryAcquire(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("a", testClass)
	s.Spawn("h", func(th *sched.Thread) {
		if !l.TryAcquire(th, Exclusive) {
			t.Error("TryAcquire on free lock failed")
		}
		th.Scheduler().Spawn("other", func(o *sched.Thread) {
			if l.TryAcquire(o, Exclusive) {
				t.Error("TryAcquire on held lock succeeded")
			}
			if l.TryAcquire(o, Shared) {
				t.Error("TryAcquire shared on exclusive lock succeeded")
			}
		})
		th.Yield()
		_ = l.Release(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// writerPriority grants nothing while an exclusive waiter queues, and
// inserts exclusive waiters at the head: the opposite of the default.
type writerPriority struct{}

func (writerPriority) Grantable(req Request, holders, waiters []Request) bool {
	if conflictsWithHolders(req, holders) {
		return false
	}
	if req.Mode == Shared {
		for _, w := range waiters {
			if w.Mode == Exclusive && w.Thread != req.Thread {
				return false
			}
		}
	}
	return true
}

func (writerPriority) InsertWaiter(req Request, waiters []Request) int {
	if req.Mode == Exclusive {
		return 0
	}
	return len(waiters)
}

func TestCustomPolicyWriterPriority(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("a", &Class{Name: "res", Timeout: time.Second, Policy: writerPriority{}})
	var order []string
	s.Spawn("r1", func(th *sched.Thread) {
		l.Acquire(th, Shared)
		th.Yield() // writer and r2 queue up meanwhile
		th.Yield()
		_ = l.Release(th)
	})
	s.Spawn("w", func(th *sched.Thread) {
		th.Yield() // let r1 in first
		l.Acquire(th, Exclusive)
		order = append(order, "w")
		_ = l.Release(th)
	})
	s.Spawn("r2", func(th *sched.Thread) {
		th.Yield()
		l.Acquire(th, Shared) // blocked behind queued writer by policy
		order = append(order, "r2")
		_ = l.Release(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "w" {
		t.Fatalf("order = %v, want writer first", order)
	}
	if m.Stats().PolicyCalls == 0 {
		t.Fatal("policy path not exercised")
	}
}

func TestAcquireCostCharged(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("a", &Class{Name: "res", Timeout: time.Second, AcquireCost: 33 * time.Microsecond, ReleaseCost: 10 * time.Microsecond})
	s.Spawn("t", func(th *sched.Thread) {
		l.Acquire(th, Exclusive)
		_ = l.Release(th)
		if got := th.CPUTime(); got != 43*time.Microsecond {
			t.Errorf("CPU charged %v, want 43us", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortedWaiterDequeued(t *testing.T) {
	s, m := newEnv()
	l := m.NewLock("a", testClass)
	var waiterTh *sched.Thread
	s.Spawn("holder", func(th *sched.Thread) {
		l.Acquire(th, Exclusive)
		th.Sleep(30 * time.Millisecond)
		_ = l.Release(th)
		if l.WaiterCount() != 0 {
			t.Errorf("aborted waiter still queued: %d", l.WaiterCount())
		}
	})
	waiterTh = s.Spawn("waiter", func(th *sched.Thread) {
		defer func() { _ = recover() }()
		th.Charge(time.Millisecond)
		l.Acquire(th, Exclusive)
		t.Error("aborted waiter acquired the lock")
	})
	s.Spawn("aborter", func(th *sched.Thread) {
		th.Charge(2 * time.Millisecond)
		waiterTh.RequestAbort(errors.New("die"))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHeldLocksTracking(t *testing.T) {
	s, m := newEnv()
	la := m.NewLock("A", testClass)
	lb := m.NewLock("B", testClass)
	s.Spawn("t", func(th *sched.Thread) {
		la.Acquire(th, Exclusive)
		lb.Acquire(th, Shared)
		hl, _ := th.Local("heldLocks").([]string)
		if len(hl) != 2 {
			t.Errorf("heldLocks = %v", hl)
		}
		_ = la.Release(th)
		_ = lb.Release(th)
		if th.Local("heldLocks") != nil {
			t.Errorf("heldLocks not cleared: %v", th.Local("heldLocks"))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: with random interleavings of readers and writers, mutual
// exclusion holds (no writer coexists with anyone) and everyone
// eventually finishes.
func TestPropertyMutualExclusion(t *testing.T) {
	f := func(seed uint8, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		s, m := newEnv()
		l := m.NewLock("a", testClass)
		readers, writers := 0, 0
		ok := true
		finished := 0
		for i := 0; i < n; i++ {
			excl := (int(seed)>>uint(i%8))&1 == 1
			s.Spawn("t", func(th *sched.Thread) {
				for j := 0; j < 3; j++ {
					if excl {
						l.Acquire(th, Exclusive)
						writers++
						if writers != 1 || readers != 0 {
							ok = false
						}
						th.Yield()
						writers--
					} else {
						l.Acquire(th, Shared)
						readers++
						if writers != 0 {
							ok = false
						}
						th.Yield()
						readers--
					}
					_ = l.Release(th)
				}
				finished++
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return ok && finished == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAcquireReleaseFastPath(b *testing.B) {
	s, m := newEnv()
	l := m.NewLock("a", &Class{Name: "bench", Timeout: time.Second})
	s.Spawn("t", func(th *sched.Thread) {
		for i := 0; i < b.N; i++ {
			l.Acquire(th, Exclusive)
			_ = l.Release(th)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAcquireReleasePolicyPath(b *testing.B) {
	s, m := newEnv()
	l := m.NewLock("a", &Class{Name: "bench", Timeout: time.Second, Policy: ReaderPriority{}})
	s.Spawn("t", func(th *sched.Thread) {
		for i := 0; i < b.N; i++ {
			l.Acquire(th, Exclusive)
			_ = l.Release(th)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// TestDeadlockForensicsSnapshot: the break in TestDeadlockBrokenByTimeout
// also captures a wait-for-graph snapshot — who held what, who waited on
// whom — and emits it as a deadlock trace event, so a post-mortem can see
// the cycle instead of just a timeout counter.
func TestDeadlockForensicsSnapshot(t *testing.T) {
	s, m := newEnv()
	tr := trace.New(64)
	m.Trace = tr
	la := m.NewLock("A", &Class{Name: "fast", Timeout: 20 * time.Millisecond})
	lb := m.NewLock("B", &Class{Name: "slow", Timeout: 60 * time.Millisecond})
	inTxn := make(map[*sched.Thread]bool)
	m.HolderInTxn = func(th *sched.Thread) bool { return inTxn[th] }
	mk := func(name string, first, second *Lock) {
		s.Spawn(name, func(th *sched.Thread) {
			defer func() {
				if _, ok := recover().(*sched.Abort); ok {
					first.ReleaseAll(th)
					second.ReleaseAll(th)
				}
			}()
			inTxn[th] = true
			first.Acquire(th, Exclusive)
			th.Yield()
			second.Acquire(th, Exclusive)
			_ = second.Release(th)
			_ = first.Release(th)
		})
	}
	mk("t1", la, lb)
	mk("t2", lb, la)
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := m.Stats()
	if st.DeadlockBreak == 0 {
		t.Fatal("deadlock break not recorded")
	}
	// The snapshot holds the full two-edge cycle in deterministic order:
	// lock A was created first, so its edge leads.
	want := []string{"t1->t2 on A", "t2->t1 on B"}
	if len(st.LastDeadlock) != len(want) {
		t.Fatalf("LastDeadlock = %v, want %v", st.LastDeadlock, want)
	}
	for i, e := range st.LastDeadlock {
		if e.String() != want[i] {
			t.Errorf("edge %d = %q, want %q", i, e, want[i])
		}
	}
	// Stats() must copy the snapshot, not alias it.
	st.LastDeadlock[0].Lock = "mutated"
	if m.Stats().LastDeadlock[0].Lock != "A" {
		t.Error("Stats() aliased the live LastDeadlock slice")
	}
	evs := tr.Filter(trace.Deadlock)
	if len(evs) == 0 {
		t.Fatal("no deadlock trace event")
	}
	for _, edge := range want {
		if !strings.Contains(evs[0].Detail, edge) {
			t.Errorf("deadlock trace %q missing edge %q", evs[0].Detail, edge)
		}
	}
}
