// Package redteam is the adversarial escape corpus for the
// compartmented SFI sandbox: a fixed set of attack images — forged
// discharges, width confusion, smuggled sandbox masks, out-of-bounds
// loads and stores into kernel-exported data, stack pivots, call-table
// forgery, writes through revoked grants, permission confusion — each
// annotated with the layer that must stop it. Every case must either be
// rejected by the verifier or contained at runtime with an intact
// audit; a single escape fails the whole corpus.
//
// The runner is deterministic: for a fixed seed the report is
// byte-identical at any worker count, so CI can cmp reports across pool
// sizes. It runs standalone (`vinosim redteam`) and as an opt-in chaos
// campaign phase.
package redteam

import (
	"errors"
	"fmt"
	"strings"

	"vino/internal/sfi"
)

// Outcome is a case verdict: which layer dealt with the attack.
type Outcome string

const (
	// Rejected: the verifier refused the image; it never ran.
	Rejected Outcome = "rejected"
	// Contained: the image ran and the VM trapped the attack with the
	// kernel-memory and read-only-region audits intact.
	Contained Outcome = "contained"
	// Escaped: the attack ran unchecked or the audit found damage.
	// Never acceptable.
	Escaped Outcome = "escaped"
)

// Case is one adversarial image: how to build it and which layer must
// stop it.
type Case struct {
	Name string
	Desc string
	// Want is the expected outcome, Rejected or Contained. A corpus run
	// is clean only if every case lands exactly on its expectation — a
	// verify-reject case that slips into the VM is a verifier gap even
	// if the VM then traps it.
	Want Outcome
	// Build returns the attack image (possibly hand-forged and
	// unverifiable — the runner verifies independently).
	Build func() (*sfi.Image, error)
	// Exploit drives the VM; nil means a single Call("main"). It
	// returns the attack's final error: nil means the attack ran to
	// completion unchecked. Setup failures are wrapped in ErrSetup.
	Exploit func(vm *sfi.VM) error
}

// ErrSetup marks an exploit-harness failure (a grant that should have
// been accepted, a priming call that should have committed) as opposed
// to a contained attack. The runner reports it as an escape so CI
// investigates rather than green-washing a broken case.
var ErrSetup = errors.New("redteam: exploit setup failed")

const shareOff = 40960 // DefaultLayout(64 KiB): share region base offset
const roOff = 49152    // DefaultLayout(64 KiB): read-only region base offset

var corpusSigner = sfi.NewSigner([]byte("redteam-corpus"))

// buildComp compiles an attack source through the real compartment
// toolchain (rewrite, verify, sign) with the default 64 KiB layout.
func buildComp(src string) func() (*sfi.Image, error) {
	return func() (*sfi.Image, error) {
		img, _, err := sfi.BuildCompartmented(src, corpusSigner)
		return img, err
	}
}

// Corpus returns the full attack set in canonical order. Cases are
// rebuilt on every call; the set and its order are fixed.
func Corpus() []Case {
	return []Case{
		{
			Name: "kernel-stomp-store",
			Desc: "8-byte store one segment past the heap base, aimed at kernel memory",
			Want: Contained,
			Build: buildComp(`
.name kstomp
.func main
main:
    movi r1, 65536
    add r1, r1, r10
    st [r1+0], r2
    ret
`),
		},
		{
			Name: "kernel-probe-load",
			Desc: "load from far outside the segment to exfiltrate kernel data",
			Want: Contained,
			Build: buildComp(`
.name kprobe
.func main
main:
    movi r1, 1048576
    add r1, r1, r10
    ld r2, [r1+0]
    ret
`),
		},
		{
			Name: "negative-offset-store",
			Desc: "store below the segment base via a negative offset",
			Want: Contained,
			Build: buildComp(`
.name negoff
.func main
main:
    movi r1, -4096
    add r1, r1, r10
    st [r1+0], r2
    ret
`),
		},
		{
			Name: "ro-export-store",
			Desc: "8-byte store into the read-only kernel-export region",
			Want: Contained,
			Build: buildComp(`
.name rostomp
.func main
main:
    movi r1, 49152
    add r1, r1, r10
    st [r1+0], r2
    ret
`),
		},
		{
			Name: "ro-export-byte-store",
			Desc: "1-byte store into the read-only region (the narrow-width path)",
			Want: Contained,
			Build: buildComp(`
.name rostompb
.func main
main:
    movi r1, 49160
    add r1, r1, r10
    movi r2, 255
    stb [r1+0], r2
    ret
`),
		},
		{
			Name: "stack-pivot-push",
			Desc: "repoint SP into the heap, then push — a pivot the flat mask would allow",
			Want: Contained,
			Build: buildComp(`
.name pivot
.func main
main:
    addi sp, r10, 64
    push r1
    ret
`),
		},
		{
			Name: "stack-underflow-pop",
			Desc: "pop with an empty stack: SP reads past the top of the stack region",
			Want: Contained,
			Build: buildComp(`
.name underflow
.func main
main:
    pop r1
    ret
`),
		},
		{
			Name: "share-unsanctioned-read",
			Desc: "read the shared-buffer region with no grant open",
			Want: Contained,
			Build: buildComp(`
.name sharepeek
.func main
main:
    movi r1, 40960
    add r1, r1, r10
    ld r2, [r1+0]
    ret
`),
		},
		{
			Name: "share-unsanctioned-write",
			Desc: "write the shared-buffer region with no grant open",
			Want: Contained,
			Build: buildComp(`
.name sharepoke
.func main
main:
    movi r1, 40960
    add r1, r1, r10
    st [r1+0], r2
    ret
`),
		},
		{
			Name: "revoked-grant-replay",
			Desc: "cache a granted shared-buffer pointer, replay the write after revocation",
			Want: Contained,
			Build: buildComp(`
.name replay
.func main
main:
    movi r1, 40960
    add r1, r1, r10
    movi r2, 7
    st [r1+0], r2
    ret
`),
			Exploit: func(vm *sfi.VM) error {
				if _, err := vm.Grant(shareOff, 64, sfi.PermRW); err != nil {
					return fmt.Errorf("%w: grant: %v", ErrSetup, err)
				}
				if _, err := vm.Call("main"); err != nil {
					return fmt.Errorf("%w: granted write trapped: %v", ErrSetup, err)
				}
				vm.RevokeGrants() // dispatch returned: the window is dead
				_, err := vm.Call("main")
				return err
			},
		},
		{
			Name: "readonly-grant-confusion",
			Desc: "write through a read-only grant window",
			Want: Contained,
			Build: buildComp(`
.name confuse
.func main
main:
    movi r1, 40960
    add r1, r1, r10
    st [r1+0], r2
    ret
`),
			Exploit: func(vm *sfi.VM) error {
				if _, err := vm.Grant(shareOff, 64, sfi.PermRead); err != nil {
					return fmt.Errorf("%w: grant: %v", ErrSetup, err)
				}
				_, err := vm.Call("main")
				return err
			},
		},
		{
			Name: "calltable-forgery",
			Desc: "retarget an indirect call one instruction before its registered target",
			Want: Contained,
			Build: func() (*sfi.Image, error) {
				img, _, err := sfi.BuildCompartmented(`
.name forge
.func main
.target aux
main:
    lea r2, aux
    callr r2
    ret
aux:
    ret
`, corpusSigner)
				if err != nil {
					return nil, err
				}
				forged := img.Clone()
				for i, ins := range forged.Code {
					if ins.Op == sfi.LEA {
						forged.Code[i].Imm-- // valid code, but not in the call table
					}
				}
				return forged, nil
			},
		},
		{
			Name: "forged-discharge-cross-region",
			Desc: "hand-forged image claiming a static discharge for a store into the read-only region",
			Want: Rejected,
			Build: func() (*sfi.Image, error) {
				return &sfi.Image{
					Name: "discharge-forge",
					Safe: true,
					Code: []sfi.Instr{
						{Op: sfi.ADDI, Rd: 1, Rs1: sfi.RegHeapBase, Imm: roOff + 8},
						{Op: sfi.ST, Rs1: 1, Rs2: 2},
						{Op: sfi.RET},
					},
					Funcs:  map[string]int{"main": 0},
					Layout: sfi.DefaultLayout(64 << 10),
				}, nil
			},
		},
		{
			Name: "width-confusion",
			Desc: "narrow 1-byte check certifying a full 8-byte store",
			Want: Rejected,
			Build: func() (*sfi.Image, error) {
				return &sfi.Image{
					Name: "narrow",
					Safe: true,
					Code: []sfi.Instr{
						{Op: sfi.CHKW, Rd: 1, Imm: 1},
						{Op: sfi.ST, Rs1: 1, Rs2: 2},
						{Op: sfi.RET},
					},
					Funcs:  map[string]int{"main": 0},
					Layout: sfi.DefaultLayout(64 << 10),
				}, nil
			},
		},
		{
			Name: "sandbox-opcode-smuggle",
			Desc: "flat sandbox mask smuggled into a compartmented image to launder an address",
			Want: Rejected,
			Build: func() (*sfi.Image, error) {
				return &sfi.Image{
					Name: "smuggle",
					Safe: true,
					Code: []sfi.Instr{
						{Op: sfi.SANDBOX, Rd: 1},
						{Op: sfi.ST, Rs1: 1, Rs2: 2},
						{Op: sfi.RET},
					},
					Funcs:  map[string]int{"main": 0},
					Layout: sfi.DefaultLayout(64 << 10),
				}, nil
			},
		},
		{
			Name: "overlapping-regions",
			Desc: "layout whose writable region overlaps the read-only one",
			Want: Rejected,
			Build: func() (*sfi.Image, error) {
				return &sfi.Image{
					Name:  "overlap",
					Safe:  true,
					Code:  []sfi.Instr{{Op: sfi.RET}},
					Funcs: map[string]int{"main": 0},
					Layout: &sfi.Layout{SegSize: 64 << 10, Regions: []sfi.Region{
						{Name: "heap", Kind: sfi.RegionHeap, Off: 0, Size: 49160, Perm: sfi.PermRW},
						{Name: "ro", Kind: sfi.RegionRO, Off: 49152, Size: 8192, Perm: sfi.PermRead},
						{Name: "stack", Kind: sfi.RegionStack, Off: 57344, Size: 8192, Perm: sfi.PermRW},
					}},
				}, nil
			},
		},
		{
			Name: "jump-over-check",
			Desc: "branch landing between a region check and its store",
			Want: Rejected,
			Build: func() (*sfi.Image, error) {
				return &sfi.Image{
					Name: "hopper",
					Safe: true,
					Code: []sfi.Instr{
						{Op: sfi.JMP, Imm: 2},
						{Op: sfi.CHKW, Rd: 1, Imm: 8},
						{Op: sfi.ST, Rs1: 1, Rs2: 2},
						{Op: sfi.RET},
					},
					Funcs:  map[string]int{"main": 0},
					Layout: sfi.DefaultLayout(64 << 10),
				}, nil
			},
		},
		{
			Name: "closure-cache-poisoning",
			Desc: "reinstall pairs a same-named evil image with the benign image's cached translated closures",
			Want: Contained,
			Build: buildComp(`
.name cachemark
.func main
main:
    movi r2, 7
    addi r3, r10, 64
    st [r3+0], r2
    ret
`),
			Exploit: func(vm *sfi.VM) error {
				// The "cache" holds the benign image's program. The attack
				// reinstalls different code under the same image name and
				// tries to run it on those closures — if the loader pairs
				// them, the evil image executes code compiled from the
				// benign one and every check placement certified for it is
				// a lie.
				benign, err := sfi.Translate(vm.Image())
				if err != nil {
					return fmt.Errorf("%w: translate benign: %v", ErrSetup, err)
				}
				evil, _, err := sfi.BuildCompartmented(`
.name cachemark
.func main
main:
    movi r1, 49152
    add r1, r1, r10
    st [r1+0], r2
    ret
`, corpusSigner)
				if err != nil {
					return fmt.Errorf("%w: build evil twin: %v", ErrSetup, err)
				}
				poisoned, err := sfi.NewVM(evil, sfi.Config{MaxCycles: 1 << 20, Program: benign})
				if err == nil {
					_, _ = poisoned.Call("main")
					return nil // the loader accepted the stale pairing: escape
				}
				return err // refused: the content-hash key held
			},
		},
		{
			Name: "grant-replay-engine-switch",
			Desc: "replay a revoked grant on the opposite VM engine, hunting a translation-only grant leak",
			Want: Contained,
			Build: buildComp(`
.name engineswap
.func main
main:
    movi r1, 40960
    add r1, r1, r10
    movi r2, 7
    st [r1+0], r2
    ret
`),
			Exploit: func(vm *sfi.VM) error {
				replay := func(v *sfi.VM) error {
					if _, err := v.Grant(shareOff, 64, sfi.PermRW); err != nil {
						return fmt.Errorf("%w: grant: %v", ErrSetup, err)
					}
					if _, err := v.Call("main"); err != nil {
						return fmt.Errorf("%w: granted write trapped: %v", ErrSetup, err)
					}
					v.RevokeGrants()
					_, err := v.Call("main")
					return err
				}
				err1 := replay(vm)
				if errors.Is(err1, ErrSetup) {
					return err1
				}
				other, err := sfi.NewVM(vm.Image(), sfi.Config{MaxCycles: 1 << 20, Translate: !vm.Translated()})
				if err != nil {
					return fmt.Errorf("%w: engine-switch vm: %v", ErrSetup, err)
				}
				err2 := replay(other)
				if errors.Is(err2, ErrSetup) {
					return err2
				}
				if err1 == nil || err2 == nil {
					return nil // a replay got through on either engine: escape
				}
				if err1.Error() != err2.Error() {
					return fmt.Errorf("%w: engines disagree on the replay trap: %q vs %q", ErrSetup, err1, err2)
				}
				return err1
			},
		},
	}
}

// Config parameterizes a corpus run.
type Config struct {
	// Seed varies the audit sentinel patterns; the set of cases and
	// their expected outcomes are seed-independent.
	Seed int64
	// Workers bounds concurrency (default 1). Wall-clock only: the
	// report is byte-identical at any value.
	Workers int
	// Translate runs contained cases on the translated closure engine
	// instead of the interpreter. Reports are byte-identical either way
	// — the translated checks must trap with the exact same errors —
	// so CI can cmp reports across engines.
	Translate bool
}

// Verdict is one case's result.
type Verdict struct {
	Case   string
	Want   Outcome
	Got    Outcome
	Detail string
}

// OK reports whether the case landed exactly on its expectation.
func (v Verdict) OK() bool { return v.Got == v.Want }

// Result is a full corpus run, verdicts in corpus order.
type Result struct {
	Seed      int64
	Verdicts  []Verdict
	Rejected  int
	Contained int
	Escapes   int
	// Mismatches counts non-escape deviations (e.g. a verify-reject
	// case that the verifier accepted but the VM then contained).
	Mismatches int
}

// Clean reports a fully successful run: zero escapes and every case on
// its expected layer.
func (r *Result) Clean() bool { return r.Escapes == 0 && r.Mismatches == 0 }

// Summary renders the deterministic report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "red-team corpus: %d cases — %d rejected, %d contained, %d escaped, %d off-expectation (seed %d)\n",
		len(r.Verdicts), r.Rejected, r.Contained, r.Escapes, r.Mismatches, r.Seed)
	for _, v := range r.Verdicts {
		mark := "ok"
		if !v.OK() {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%-4s] %-9s %-28s %s\n", mark, v.Got, v.Case, v.Detail)
	}
	return b.String()
}

// mix is the splitmix64 finalizer, deriving per-case sentinel streams
// from the master seed (same derivation as the campaign drivers).
func mix(a, b int64) int64 {
	z := uint64(a)*0x9E3779B97F4A7C15 + uint64(b)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Run executes the corpus and merges verdicts in corpus order.
func Run(cfg Config) *Result {
	cases := Corpus()
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	verdicts := make([]Verdict, len(cases))
	jobs := make(chan int)
	done := make(chan struct{})
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			for id := range jobs {
				verdicts[id] = runCase(cases[id], mix(cfg.Seed, int64(id)), cfg.Translate)
			}
			done <- struct{}{}
		}()
	}
	for id := range cases {
		jobs <- id
	}
	close(jobs)
	for w := 0; w < cfg.Workers; w++ {
		<-done
	}
	res := &Result{Seed: cfg.Seed, Verdicts: verdicts}
	for _, v := range verdicts {
		switch v.Got {
		case Rejected:
			res.Rejected++
		case Contained:
			res.Contained++
		case Escaped:
			res.Escapes++
		}
		if !v.OK() && v.Got != Escaped {
			res.Mismatches++
		}
	}
	return res
}

// runCase builds, verifies and (if the verifier lets it through) runs
// one attack under sentinel audit.
func runCase(c Case, sub int64, translate bool) Verdict {
	v := Verdict{Case: c.Name, Want: c.Want}
	img, err := c.Build()
	if err != nil {
		// A corpus image failing to *build* means the toolchain itself
		// rejected the attack before verification — count it as
		// rejected only if that is what the case expects.
		v.Got = Rejected
		v.Detail = "build: " + err.Error()
		return v
	}
	if err := sfi.Verify(img); err != nil {
		v.Got = Rejected
		v.Detail = err.Error()
		return v
	}
	vm, err := sfi.NewVM(img, sfi.Config{MaxCycles: 1 << 20, Translate: translate})
	if err != nil {
		v.Got = Rejected
		v.Detail = "vm: " + err.Error()
		return v
	}

	// Sentinel audit: paint kernel memory, seed the read-only region
	// with a known pattern. Any change after the exploit is an escape.
	sentinel := byte(sub) | 1
	kmem := vm.KernelMemory()
	for i := range kmem {
		kmem[i] = sentinel
	}
	var roPat []byte
	var roBase int64
	if lay := vm.Layout(); lay != nil {
		if _, ok := lay.Region(sfi.RegionRO); ok {
			roPat = make([]byte, 64)
			for i := range roPat {
				roPat[i] = sentinel ^ byte(i)
			}
			if roBase, err = vm.SeedRegion(sfi.RegionRO, roPat); err != nil {
				v.Got = Escaped
				v.Detail = "audit setup: " + err.Error()
				return v
			}
		}
	}

	exploit := c.Exploit
	if exploit == nil {
		exploit = func(vm *sfi.VM) error { _, err := vm.Call("main"); return err }
	}
	attackErr := exploit(vm)
	if errors.Is(attackErr, ErrSetup) {
		v.Got = Escaped
		v.Detail = attackErr.Error()
		return v
	}

	if bad := auditSentinels(vm, sentinel, roBase, roPat); bad != "" {
		v.Got = Escaped
		v.Detail = bad
		return v
	}
	if attackErr == nil {
		v.Got = Escaped
		v.Detail = "attack ran to completion unchecked"
		return v
	}
	v.Got = Contained
	v.Detail = attackErr.Error()
	return v
}

// auditSentinels re-checks the painted kernel memory and the seeded
// read-only region; a non-empty return describes the damage.
func auditSentinels(vm *sfi.VM, sentinel byte, roBase int64, roPat []byte) string {
	for i, b := range vm.KernelMemory() {
		if b != sentinel {
			return fmt.Sprintf("kernel memory modified at +%d: %#x != sentinel %#x", i, b, sentinel)
		}
	}
	if roPat != nil {
		seg := vm.Heap()
		off := roBase - int64(vm.HeapBase())
		for i, want := range roPat {
			if got := seg[off+int64(i)]; got != want {
				return fmt.Sprintf("read-only region modified at +%d: %#x != %#x", i, got, want)
			}
		}
	}
	return ""
}
