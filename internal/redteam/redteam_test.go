package redteam

import (
	"strings"
	"testing"

	"vino/internal/sfi"
)

// TestCorpusClean is the tentpole claim: every adversarial image is
// rejected by the verifier or contained at runtime, with the kernel
// memory and read-only region audits intact. Zero escapes.
func TestCorpusClean(t *testing.T) {
	res := Run(Config{Seed: 7})
	if !res.Clean() {
		t.Fatalf("corpus not clean:\n%s", res.Summary())
	}
	if res.Escapes != 0 {
		t.Fatalf("escapes = %d:\n%s", res.Escapes, res.Summary())
	}
	for _, v := range res.Verdicts {
		if !v.OK() {
			t.Errorf("case %s: got %s, want %s (%s)", v.Case, v.Got, v.Want, v.Detail)
		}
	}
	if res.Rejected == 0 || res.Contained == 0 {
		t.Errorf("degenerate corpus: %d rejected, %d contained — want both layers exercised", res.Rejected, res.Contained)
	}
}

// TestCorpusCoversBothLayers pins the corpus composition so cases are
// not silently dropped or downgraded: at least 5 verifier rejections
// and at least 8 runtime containments.
func TestCorpusCoversBothLayers(t *testing.T) {
	var rejects, contains int
	for _, c := range Corpus() {
		switch c.Want {
		case Rejected:
			rejects++
		case Contained:
			contains++
		default:
			t.Errorf("case %s expects %q: corpus cases must expect rejected or contained", c.Name, c.Want)
		}
	}
	if rejects < 5 {
		t.Errorf("verify-reject cases = %d, want >= 5", rejects)
	}
	if contains < 8 {
		t.Errorf("runtime-contain cases = %d, want >= 8", contains)
	}
}

// TestCorpusCleanTranslated: the same zero-escape bar holds when the
// contained cases run on the translated closure engine — translation
// must not open a single hole the interpreter closes.
func TestCorpusCleanTranslated(t *testing.T) {
	res := Run(Config{Seed: 7, Translate: true})
	if !res.Clean() {
		t.Fatalf("corpus not clean under translation:\n%s", res.Summary())
	}
	if res.Escapes != 0 {
		t.Fatalf("escapes = %d under translation:\n%s", res.Escapes, res.Summary())
	}
}

// TestReportIdenticalAcrossEngines: the report is byte-identical whether
// the corpus runs interpreted or translated — every trap fires at the
// same layer with the same detail. This is the CI cross-engine cmp in
// library form.
func TestReportIdenticalAcrossEngines(t *testing.T) {
	interp := Run(Config{Seed: 7}).Summary()
	trans := Run(Config{Seed: 7, Translate: true}).Summary()
	if interp != trans {
		t.Fatalf("engine reports diverge:\n--- interpreted\n%s\n--- translated\n%s", interp, trans)
	}
}

// TestReportDeterministicAcrossWorkers: the summary is byte-identical
// at any worker-pool size — the CI determinism cmp in library form.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	base := Run(Config{Seed: 42, Workers: 1}).Summary()
	for _, w := range []int{2, 4, 8} {
		if got := Run(Config{Seed: 42, Workers: w}).Summary(); got != base {
			t.Fatalf("summary diverges at %d workers:\n--- workers=1\n%s\n--- workers=%d\n%s", w, base, w, got)
		}
	}
}

// TestAuditFlagsRealEscape: feed the runner an "attack" that is allowed
// to succeed (an unsafe image writing kernel memory directly) and
// confirm the sentinel audit reports an escape rather than containment
// — the corpus's failure detector must itself work.
func TestAuditFlagsRealEscape(t *testing.T) {
	c := Case{
		Name: "planted-escape",
		Want: Contained,
		Build: func() (*sfi.Image, error) {
			// Unsafe (unrewritten, no layout): the VM runs it without
			// region checks, so the store lands in kernel memory.
			img, err := sfi.Assemble(`
.name planted
.func main
main:
    movi r1, -8
    add r1, r1, r10
    movi r2, 1
    st [r1+0], r2
    ret
`)
			return img, err
		},
	}
	v := runCase(c, 99, false)
	if v.Got != Escaped {
		t.Fatalf("planted escape scored %s (%s), want escaped", v.Got, v.Detail)
	}
	if !strings.Contains(v.Detail, "kernel memory modified") {
		t.Errorf("detail = %q, want the kernel-memory audit message", v.Detail)
	}
}

// TestSetupFailureIsNotContainment: an exploit whose harness breaks
// must surface as an escape, not be green-washed as contained.
func TestSetupFailureIsNotContainment(t *testing.T) {
	c := Corpus()[0]
	c.Exploit = func(vm *sfi.VM) error {
		_, err := vm.Grant(0, 8, sfi.PermRW) // heap, not share: must be refused
		if err == nil {
			return nil
		}
		return ErrSetup
	}
	v := runCase(c, 3, false)
	if v.Got != Escaped {
		t.Fatalf("setup failure scored %s, want escaped", v.Got)
	}
}
