package sfi

import (
	"errors"
	"strings"
	"testing"
)

func runSrc(t *testing.T, src string, entry string, args ...int64) (int64, *VM) {
	t.Helper()
	img := mustAssemble(t, src)
	vm, err := NewVM(img, Config{})
	if err != nil {
		t.Fatalf("NewVM: %v", err)
	}
	res, err := vm.Call(entry, args...)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	return res, vm
}

func TestVMArithmetic(t *testing.T) {
	res, _ := runSrc(t, `
.name arith
.func main
main:
    movi r1, 6
    movi r2, 7
    mul  r0, r1, r2
    ret
`, "main")
	if res != 42 {
		t.Fatalf("result = %d, want 42", res)
	}
}

func TestVMArgsAndComparisons(t *testing.T) {
	src := `
.name max
.func max
max:
    cmplt r3, r1, r2
    jnz r3, second
    mov r0, r1
    ret
second:
    mov r0, r2
    ret
`
	if res, _ := runSrc(t, src, "max", 10, 3); res != 10 {
		t.Fatalf("max(10,3) = %d", res)
	}
	if res, _ := runSrc(t, src, "max", -5, 3); res != 3 {
		t.Fatalf("max(-5,3) = %d", res)
	}
}

func TestVMLoopSum(t *testing.T) {
	// sum 1..n via loop
	res, vm := runSrc(t, `
.name sum
.func main
main:
    movi r0, 0
loop:
    jz r1, done
    add r0, r0, r1
    addi r1, r1, -1
    jmp loop
done:
    ret
`, "main", 100)
	if res != 5050 {
		t.Fatalf("sum = %d, want 5050", res)
	}
	if vm.Steps() < 300 {
		t.Fatalf("steps = %d, implausibly few", vm.Steps())
	}
	if vm.TotalCycles() < vm.Steps() {
		t.Fatal("cycles < steps")
	}
}

func TestVMMemoryReadWrite(t *testing.T) {
	res, _ := runSrc(t, `
.name mem
.func main
main:
    ; store 0x1122 at heap+64, read it back
    movi r2, 0x1122
    addi r3, r10, 64
    st  [r3+0], r2
    ld  r0, [r3+0]
    ret
`, "main")
	if res != 0x1122 {
		t.Fatalf("mem round trip = %#x", res)
	}
}

func TestVMByteOps(t *testing.T) {
	res, _ := runSrc(t, `
.name bytes
.func main
main:
    movi r2, 0x1FF
    addi r3, r10, 10
    stb [r3+0], r2   ; truncates to 0xFF
    ldb r0, [r3+0]   ; zero-extends
    ret
`, "main")
	if res != 0xFF {
		t.Fatalf("byte round trip = %#x", res)
	}
}

func TestVMInitialDataVisible(t *testing.T) {
	res, _ := runSrc(t, `
.name data
.data "\x2A"
.func main
main:
    ldb r0, [r10+0]
    ret
`, "main")
	if res != 42 {
		t.Fatalf("data byte = %d", res)
	}
}

func TestVMPushPop(t *testing.T) {
	res, _ := runSrc(t, `
.name stack
.func main
main:
    movi r1, 11
    movi r2, 22
    push r1
    push r2
    pop r3   ; 22
    pop r4   ; 11
    sub r0, r3, r4
    ret
`, "main")
	if res != 11 {
		t.Fatalf("stack result = %d", res)
	}
}

func TestVMCallRet(t *testing.T) {
	res, _ := runSrc(t, `
.name calls
.func main
main:
    movi r1, 5
    call double
    call double
    mov r0, r1
    ret
double:
    add r1, r1, r1
    ret
`, "main")
	if res != 20 {
		t.Fatalf("result = %d, want 20", res)
	}
}

func TestVMIndirectCall(t *testing.T) {
	res, _ := runSrc(t, `
.name ind
.func main
.target work
main:
    lea r1, work
    callr r1
    ret
work:
    movi r0, 99
    ret
`, "main")
	if res != 99 {
		t.Fatalf("result = %d", res)
	}
}

func TestVMChkcallRejectsUnregisteredTarget(t *testing.T) {
	img := mustAssemble(t, `
.name bad
.func main
main:
    lea r1, hidden
    chkcall r1
    callr r1
    ret
hidden:
    movi r0, 1
    ret
`)
	vm, err := NewVM(img, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = vm.Call("main")
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want Violation", err)
	}
	if !strings.Contains(v.Detail, "unregistered target") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

func TestVMKernelCall(t *testing.T) {
	img := mustAssemble(t, `
.name k
.import test.add3
.func main
main:
    movi r1, 1
    movi r2, 2
    movi r3, 3
    callk test.add3
    ret
`)
	vm, err := NewVM(img, Config{
		Kernel: map[string]KernelFunc{
			"test.add3": func(vm *VM, args [5]int64) (int64, error) {
				return args[0] + args[1] + args[2], nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res != 6 {
		t.Fatalf("kernel call result = %d", res)
	}
}

func TestVMKernelCallErrorPropagates(t *testing.T) {
	img := mustAssemble(t, `
.name k
.import test.fail
.func main
main:
    callk test.fail
    ret
`)
	boom := errors.New("permission denied")
	vm, err := NewVM(img, Config{
		Kernel: map[string]KernelFunc{
			"test.fail": func(vm *VM, args [5]int64) (int64, error) { return 0, boom },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Call("main"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestVMUnresolvedSymbolRejectedAtLoad(t *testing.T) {
	img := mustAssemble(t, `
.name k
.import test.ghost
.func main
main:
    ret
`)
	if _, err := NewVM(img, Config{}); err == nil {
		t.Fatal("unresolved symbol accepted")
	}
}

func TestVMDivideByZeroTraps(t *testing.T) {
	img := mustAssemble(t, `
.name z
.func main
main:
    movi r1, 1
    movi r2, 0
    div r0, r1, r2
    ret
`)
	vm, _ := NewVM(img, Config{})
	_, err := vm.Call("main")
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want Violation", err)
	}
}

// TestVMUnsafeGraftCorruptsKernelMemory demonstrates the disaster the
// paper opens with: an unprotected graft with a stray pointer writes
// into kernel memory.
func TestVMUnsafeGraftCorruptsKernelMemory(t *testing.T) {
	img := mustAssemble(t, `
.name rogue
.func main
main:
    movi r1, 128       ; an absolute kernel address, below the segment
    movi r2, 0xDEAD
    st [r1+0], r2
    movi r0, 0
    ret
`)
	vm, _ := NewVM(img, Config{})
	kmem := vm.KernelMemory()
	if _, err := vm.Call("main"); err != nil {
		t.Fatalf("unsafe in-arena write should 'succeed' (silent corruption): %v", err)
	}
	if kmem[128] != 0xAD || kmem[129] != 0xDE {
		t.Fatal("kernel memory was not corrupted — unsafe mode too safe")
	}
}

// TestVMUnsafeWildPointerCrashesKernel: an out-of-arena access in an
// unprotected graft is the simulated machine check.
func TestVMUnsafeWildPointerCrashesKernel(t *testing.T) {
	img := mustAssemble(t, `
.name wild
.func main
main:
    movi r1, -4096
    ld r0, [r1+0]
    ret
`)
	vm, _ := NewVM(img, Config{})
	_, err := vm.Call("main")
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want CrashError", err)
	}
}

// TestVMSafeGraftCannotEscapeSegment: the same stray addresses, once
// SFI-rewritten, land harmlessly inside the graft's own segment.
func TestVMSafeGraftCannotEscapeSegment(t *testing.T) {
	src := `
.name rogue
.func main
main:
    movi r1, 128
    movi r2, 0xDEAD
    st [r1+0], r2      ; kernel address
    movi r3, -4096
    ld r4, [r3+0]      ; wild pointer
    movi r0, 0
    ret
`
	img := mustAssemble(t, src)
	safe, _, err := Rewrite(img)
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := NewVM(safe, Config{})
	kmem := vm.KernelMemory()
	for i := range kmem {
		kmem[i] = 0x55
	}
	if _, err := vm.Call("main"); err != nil {
		t.Fatalf("sandboxed graft trapped: %v", err)
	}
	for i, b := range kmem {
		if b != 0x55 {
			t.Fatalf("kernel memory corrupted at %d despite SFI", i)
		}
	}
	// The store must have landed inside the segment at offset 128&mask.
	if got := vm.Heap()[128]; got != 0xAD {
		t.Fatalf("masked store missing from segment: heap[128]=%#x", got)
	}
}

func TestVMSandboxInstructionMasks(t *testing.T) {
	res, vm := runSrc(t, `
.name sb
.func main
main:
    movi r1, -1
    sandbox r1
    mov r0, r1
    ret
`, "main")
	base, size := int64(vm.HeapBase()), int64(vm.HeapSize())
	if res < base || res >= base+size {
		t.Fatalf("sandboxed address %d outside [%d,%d)", res, base, base+size)
	}
}

func TestVMCycleLimit(t *testing.T) {
	img := mustAssemble(t, `
.name spin
.func main
main:
    jmp main
`)
	vm, _ := NewVM(img, Config{MaxCycles: 10_000})
	_, err := vm.Call("main")
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
}

func TestVMHookReceivesCycles(t *testing.T) {
	img := mustAssemble(t, `
.name spin
.func main
main:
    jz r1, done
    addi r1, r1, -1
    jmp main
done:
    ret
`)
	var got int64
	vm, _ := NewVM(img, Config{
		HookEvery: 100,
		Hook:      func(c int64) { got += c },
	})
	if _, err := vm.Call("main", 1000); err != nil {
		t.Fatal(err)
	}
	if got != vm.TotalCycles() {
		t.Fatalf("hook saw %d cycles, vm counted %d", got, vm.TotalCycles())
	}
	if got < 3000 {
		t.Fatalf("cycles = %d, implausibly few for 1000 iterations", got)
	}
}

func TestVMHookPanicPropagates(t *testing.T) {
	// The preemption hook may panic (scheduler abort); Call must let it
	// unwind to the transaction wrapper.
	img := mustAssemble(t, `
.name spin
.func main
main:
    jmp main
`)
	sentinel := errors.New("abort")
	vm, _ := NewVM(img, Config{
		HookEvery: 100,
		Hook:      func(int64) { panic(sentinel) },
	})
	defer func() {
		if r := recover(); r != sentinel {
			t.Fatalf("recovered %v, want sentinel", r)
		}
	}()
	_, _ = vm.Call("main")
	t.Fatal("hook panic did not propagate")
}

func TestVMShadowStackOverflow(t *testing.T) {
	img := mustAssemble(t, `
.name rec
.func main
main:
    call main
    ret
`)
	vm, _ := NewVM(img, Config{})
	_, err := vm.Call("main")
	var v *Violation
	if !errors.As(err, &v) || !strings.Contains(v.Detail, "overflow") {
		t.Fatalf("err = %v, want call stack overflow", err)
	}
}

func TestVMStackDisciplineAcrossCalls(t *testing.T) {
	// Return addresses live on the shadow stack, not in graft memory:
	// clobbering the data stack cannot redirect control flow.
	res, _ := runSrc(t, `
.name shadow
.func main
main:
    movi r1, 1
    push r1
    call clobber
    pop r2
    mov r0, r2
    ret
clobber:
    ; overwrite the top 64 bytes of the stack region
    movi r3, 8
    addi r4, r10, 0
    add r4, r4, r11   ; segment end
loop:
    addi r4, r4, -8
    movi r5, 0x6666
    st [r4+0], r5
    addi r3, r3, -1
    jnz r3, loop
    ret
`, "main")
	// The data word was clobbered (expected: grafts can hurt their own
	// data) but control flow returned correctly and the pop reads the
	// clobbered value rather than crashing.
	if res != 0x6666 {
		t.Fatalf("res = %#x, want clobbered stack value", res)
	}
}

func TestVMBadEntry(t *testing.T) {
	img := mustAssemble(t, ".name e\n.func main\nmain:\n ret")
	vm, _ := NewVM(img, Config{})
	if _, err := vm.Call("missing"); err == nil {
		t.Fatal("call of missing entry succeeded")
	}
	if _, err := vm.Call("main", 1, 2, 3, 4, 5, 6); err == nil {
		t.Fatal("six arguments accepted")
	}
}

func TestVMSegSizeMustBePowerOfTwo(t *testing.T) {
	img := mustAssemble(t, ".name e\n.func main\nmain:\n ret")
	if _, err := NewVM(img, Config{SegSize: 3000}); err == nil {
		t.Fatal("non-power-of-two segment accepted")
	}
}

func TestVMDataTooBigRejected(t *testing.T) {
	img := mustAssemble(t, ".name e\n.space 5000\n.func main\nmain:\n ret")
	if _, err := NewVM(img, Config{SegSize: 4096}); err == nil {
		t.Fatal("oversized data accepted")
	}
}
