package sfi

// Differential execution harness: the interpreter is the deterministic
// oracle for the translated engine. ExecDiff runs one image on both
// engines under identical configuration and inputs and reports the
// first observable divergence — result value, trap, register file,
// memory image, step/cycle accounting, hook flush schedule, or grant
// audit counters. The redteam corpus, the fuzzer (FuzzTranslateDiff)
// and the graft install tests all drive this one comparator.

import (
	"bytes"
	"fmt"
)

// engineRun is one engine's observable outcome.
type engineRun struct {
	newVMErr error
	prepErr  error
	result   int64
	callErr  error
	regs     [NumRegs]int64
	steps    int64
	cycles   int64
	heap     []byte
	kmem     []byte
	flushes  []int64
	audits   []GrantAudit
	grants   int
}

func runEngine(img *Image, cfg Config, prep func(*VM) error, entry string, args []int64, translate bool) engineRun {
	var out engineRun
	c := cfg
	c.Translate = translate
	c.Program = nil
	userHook := cfg.Hook
	c.Hook = func(n int64) {
		out.flushes = append(out.flushes, n)
		if userHook != nil {
			userHook(n)
		}
	}
	vm, err := NewVM(img, c)
	if err != nil {
		out.newVMErr = err
		return out
	}
	if prep != nil {
		if err := prep(vm); err != nil {
			out.prepErr = err
			return out
		}
	}
	out.result, out.callErr = vm.Call(entry, args...)
	for i := 0; i < NumRegs; i++ {
		out.regs[i] = vm.Reg(i)
	}
	out.steps = vm.Steps()
	out.cycles = vm.TotalCycles()
	out.heap = vm.Heap()
	out.kmem = vm.KernelMemory()
	out.audits = vm.GrantAudits()
	out.grants = vm.ActiveGrants()
	return out
}

func errStr(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// ExecDiff executes (entry, args) on the image under both engines and
// returns a descriptive error on the first divergence, nil if the runs
// are observably identical. cfg.Translate/Program are overridden per
// engine; prep (optional) runs against each fresh VM before the call —
// use it to seed regions or open grant windows, and make it
// deterministic or the comparison is meaningless.
func ExecDiff(img *Image, cfg Config, prep func(*VM) error, entry string, args ...int64) error {
	oracle := runEngine(img, cfg, prep, entry, args, false)
	trans := runEngine(img, cfg, prep, entry, args, true)

	if (oracle.newVMErr == nil) != (trans.newVMErr == nil) || errStr(oracle.newVMErr) != errStr(trans.newVMErr) {
		return fmt.Errorf("sfi: diff: NewVM: interpreter=%q translated=%q", errStr(oracle.newVMErr), errStr(trans.newVMErr))
	}
	if oracle.newVMErr != nil {
		return nil // both refused identically
	}
	if errStr(oracle.prepErr) != errStr(trans.prepErr) {
		return fmt.Errorf("sfi: diff: prep: interpreter=%q translated=%q", errStr(oracle.prepErr), errStr(trans.prepErr))
	}
	if oracle.prepErr != nil {
		return nil
	}
	if errStr(oracle.callErr) != errStr(trans.callErr) {
		return fmt.Errorf("sfi: diff: trap mismatch: interpreter=%q translated=%q", errStr(oracle.callErr), errStr(trans.callErr))
	}
	if oracle.callErr == nil && oracle.result != trans.result {
		return fmt.Errorf("sfi: diff: result: interpreter=%d translated=%d", oracle.result, trans.result)
	}
	if oracle.regs != trans.regs {
		return fmt.Errorf("sfi: diff: registers: interpreter=%v translated=%v", oracle.regs, trans.regs)
	}
	if oracle.steps != trans.steps {
		return fmt.Errorf("sfi: diff: steps: interpreter=%d translated=%d", oracle.steps, trans.steps)
	}
	if oracle.cycles != trans.cycles {
		return fmt.Errorf("sfi: diff: cycles: interpreter=%d translated=%d", oracle.cycles, trans.cycles)
	}
	if !bytes.Equal(oracle.heap, trans.heap) {
		return fmt.Errorf("sfi: diff: heap images differ (first at %d)", firstDiff(oracle.heap, trans.heap))
	}
	if !bytes.Equal(oracle.kmem, trans.kmem) {
		return fmt.Errorf("sfi: diff: kernel memory differs (first at %d)", firstDiff(oracle.kmem, trans.kmem))
	}
	if len(oracle.flushes) != len(trans.flushes) {
		return fmt.Errorf("sfi: diff: hook flush count: interpreter=%d translated=%d", len(oracle.flushes), len(trans.flushes))
	}
	for i := range oracle.flushes {
		if oracle.flushes[i] != trans.flushes[i] {
			return fmt.Errorf("sfi: diff: hook flush #%d: interpreter=%d translated=%d", i, oracle.flushes[i], trans.flushes[i])
		}
	}
	if len(oracle.audits) != len(trans.audits) {
		return fmt.Errorf("sfi: diff: grant audits: interpreter=%v translated=%v", oracle.audits, trans.audits)
	}
	for i := range oracle.audits {
		if oracle.audits[i] != trans.audits[i] {
			return fmt.Errorf("sfi: diff: grant audit %q: interpreter=%+v translated=%+v", oracle.audits[i].Region, oracle.audits[i], trans.audits[i])
		}
	}
	if oracle.grants != trans.grants {
		return fmt.Errorf("sfi: diff: live grants: interpreter=%d translated=%d", oracle.grants, trans.grants)
	}
	return nil
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
