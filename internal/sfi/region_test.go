package sfi

import (
	"bytes"
	"strings"
	"testing"
)

// buildComp builds a compartmented image (default 64 KiB layout unless
// the source declares its own) and a VM over it.
func buildComp(t *testing.T, src string) *VM {
	t.Helper()
	img, _, err := BuildCompartmented(src, testSigner())
	if err != nil {
		t.Fatalf("BuildCompartmented: %v", err)
	}
	vm, err := NewVM(img, Config{})
	if err != nil {
		t.Fatalf("NewVM: %v", err)
	}
	return vm
}

func testSigner() *Signer { return NewSigner([]byte("region-test-key")) }

func TestLayoutValidate(t *testing.T) {
	if err := DefaultLayout(64 << 10).Validate(); err != nil {
		t.Fatalf("default layout invalid: %v", err)
	}
	if err := DefaultLayout(MinSegSize).Validate(); err != nil {
		t.Fatalf("minimum-segment default layout invalid: %v", err)
	}
	bad := []Layout{
		{SegSize: 64 << 10},                                       // no regions
		{SegSize: 1000, Regions: DefaultLayout(64 << 10).Regions}, // not power of two / too small
		{SegSize: 64 << 10, Regions: []Region{ // overlapping
			{Name: "heap", Kind: RegionHeap, Off: 0, Size: 4096, Perm: PermRW},
			{Name: "stack", Kind: RegionStack, Off: 2048, Size: 4096, Perm: PermRW},
		}},
		{SegSize: 64 << 10, Regions: []Region{ // zero-length
			{Name: "heap", Kind: RegionHeap, Off: 0, Size: 0, Perm: PermRW},
			{Name: "stack", Kind: RegionStack, Off: 4096, Size: 4096, Perm: PermRW},
		}},
		{SegSize: 64 << 10, Regions: []Region{ // out of segment
			{Name: "heap", Kind: RegionHeap, Off: 0, Size: 4096, Perm: PermRW},
			{Name: "stack", Kind: RegionStack, Off: 64 << 10, Size: 4096, Perm: PermRW},
		}},
		{SegSize: 64 << 10, Regions: []Region{ // bad permission bits
			{Name: "heap", Kind: RegionHeap, Off: 0, Size: 4096, Perm: 7},
			{Name: "stack", Kind: RegionStack, Off: 4096, Size: 4096, Perm: PermRW},
		}},
		{SegSize: 64 << 10, Regions: []Region{ // read-only stack
			{Name: "heap", Kind: RegionHeap, Off: 0, Size: 4096, Perm: PermRW},
			{Name: "stack", Kind: RegionStack, Off: 4096, Size: 4096, Perm: PermRead},
		}},
		{SegSize: 64 << 10, Regions: []Region{ // no stack at all
			{Name: "heap", Kind: RegionHeap, Off: 0, Size: 4096, Perm: PermRW},
		}},
		{SegSize: 64 << 10, Regions: []Region{ // share with static perms
			{Name: "heap", Kind: RegionHeap, Off: 0, Size: 4096, Perm: PermRW},
			{Name: "share", Kind: RegionShare, Off: 4096, Size: 4096, Perm: PermRW},
			{Name: "stack", Kind: RegionStack, Off: 8192, Size: 4096, Perm: PermRW},
		}},
		{SegSize: 64 << 10, Regions: []Region{ // heap not first/at zero
			{Name: "stack", Kind: RegionStack, Off: 0, Size: 4096, Perm: PermRW},
			{Name: "heap", Kind: RegionHeap, Off: 4096, Size: 4096, Perm: PermRW},
		}},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad layout %d accepted", i)
		}
	}
}

func TestCompartmentedGraftRuns(t *testing.T) {
	// Heap read/write, push/pop (SP starts at the stack region top),
	// arithmetic — the happy path through every check kind.
	vm := buildComp(t, `
.name comp-ok
.dataword 40
.func main
main:
    ld   r1, [r10+0]     ; read initial data from the heap
    addi r2, r1, 2
    st   [r10+8], r2     ; heap write
    push r2
    pop  r0
    ret
`)
	res, err := vm.Call("main")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if res != 42 {
		t.Fatalf("result = %d, want 42", res)
	}
	st, _ := vm.Layout().Region(RegionStack)
	if got := vm.Reg(RegSP); got != int64(vm.HeapBase())+st.Off+st.Size {
		t.Fatalf("SP = %d, want stack top %d", got, int64(vm.HeapBase())+st.Off+st.Size)
	}
}

func TestCompartmentStoreToROTraps(t *testing.T) {
	vm := buildComp(t, `
.name ro-write
.func main
main:
    movi r1, 49152      ; ro region offset in the default 64 KiB layout
    add  r1, r1, r10
    st   [r1+0], r2
    ret
`)
	_, err := vm.Call("main")
	if !IsCompartmentViolation(err) {
		t.Fatalf("store into ro region: err = %v, want compartment violation", err)
	}
}

func TestCompartmentROIsReadable(t *testing.T) {
	vm := buildComp(t, `
.name ro-read
.func main
main:
    movi r1, 49152
    add  r1, r1, r10
    ld   r0, [r1+0]
    ret
`)
	if _, err := vm.SeedRegion(RegionRO, []byte{99}); err != nil {
		t.Fatalf("SeedRegion: %v", err)
	}
	res, err := vm.Call("main")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if res != 99 {
		t.Fatalf("read %d from ro region, want 99", res)
	}
}

func TestCompartmentShareNeedsGrant(t *testing.T) {
	src := `
.name share
.func main
main:
    ; r1 = absolute address inside the share window
    st   [r1+0], r2
    ld   r0, [r1+0]
    ret
`
	vm := buildComp(t, src)
	share, _ := vm.Layout().Region(RegionShare)
	addr := int64(vm.HeapBase()) + share.Off

	// No grant: trapped.
	if _, err := vm.Call("main", addr); !IsCompartmentViolation(err) {
		t.Fatalf("ungranted share access: err = %v, want compartment violation", err)
	}

	// RW grant over the window: allowed.
	id, err := vm.Grant(share.Off, 64, PermRW)
	if err != nil {
		t.Fatalf("Grant: %v", err)
	}
	if _, err := vm.Call("main", addr); err != nil {
		t.Fatalf("granted access trapped: %v", err)
	}

	// Revoked: the same pointer is dead again.
	vm.Revoke(id)
	if _, err := vm.Call("main", addr); !IsCompartmentViolation(err) {
		t.Fatalf("post-revoke access: err = %v, want compartment violation", err)
	}

	// Read-only grant: the store is denied (permission confusion).
	if _, err := vm.Grant(share.Off, 64, PermRead); err != nil {
		t.Fatalf("Grant(ro): %v", err)
	}
	if _, err := vm.Call("main", addr); !IsCompartmentViolation(err) {
		t.Fatalf("write through read-only grant: err = %v, want compartment violation", err)
	}
	vm.RevokeGrants()
	if vm.ActiveGrants() != 0 {
		t.Fatalf("ActiveGrants = %d after RevokeGrants", vm.ActiveGrants())
	}
}

func TestGrantMustLieInShareRegion(t *testing.T) {
	vm := buildComp(t, `
.name grant-bounds
.func main
main:
    ret
`)
	if _, err := vm.Grant(0, 64, PermRW); err == nil {
		t.Fatal("grant over the heap accepted")
	}
	if _, err := vm.Grant(49152, 64, PermRW); err == nil {
		t.Fatal("grant over the ro region accepted")
	}
	share, _ := vm.Layout().Region(RegionShare)
	if _, err := vm.Grant(share.Off+share.Size-32, 64, PermRW); err == nil {
		t.Fatal("grant straddling the share boundary accepted")
	}
}

func TestCompartmentStackPivotTraps(t *testing.T) {
	// Point SP into the heap and push: CHKS confines stack writes to
	// the stack region even though the heap is writable.
	vm := buildComp(t, `
.name pivot
.func main
main:
    addi sp, r10, 64
    push r1
    ret
`)
	_, err := vm.Call("main")
	if !IsCompartmentViolation(err) {
		t.Fatalf("stack pivot: err = %v, want compartment violation", err)
	}
}

func TestCompartmentStackUnderflowTraps(t *testing.T) {
	// Popping above the stack top leaves the segment: trapped, where
	// the flat mask would have silently wrapped.
	vm := buildComp(t, `
.name underflow
.func main
main:
    pop r0
    ret
`)
	_, err := vm.Call("main")
	if !IsCompartmentViolation(err) {
		t.Fatalf("stack underflow: err = %v, want compartment violation", err)
	}
}

func TestCompartmentKernelAddressTraps(t *testing.T) {
	// An absolute kernel address is below the segment: the check traps
	// instead of masking it into the graft's own heap.
	vm := buildComp(t, `
.name kernel-oob
.func main
main:
    movi r1, 64
    st   [r1+0], r2
    ret
`)
	before := append([]byte(nil), vm.KernelMemory()...)
	_, err := vm.Call("main")
	if !IsCompartmentViolation(err) {
		t.Fatalf("kernel store: err = %v, want compartment violation", err)
	}
	if !bytes.Equal(before, vm.KernelMemory()) {
		t.Fatal("kernel memory changed")
	}
}

func TestCompartmentOptimizerDischargesHeapOnly(t *testing.T) {
	// A constant-offset heap access discharges against the region
	// table; a constant-offset RO write must not (and traps at run
	// time via its kept check).
	img, stats, err := BuildCompartmentedOptimized(`
.name disch
.func main
main:
    movi r1, 7
    st   [r10+16], r1   ; provably in heap: discharged
    ld   r0, [r10+16]   ; ditto
    ret
`, testSigner())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if stats.StaticallySafe != 2 {
		t.Fatalf("StaticallySafe = %d, want 2", stats.StaticallySafe)
	}
	vm, err := NewVM(img, Config{})
	if err != nil {
		t.Fatalf("NewVM: %v", err)
	}
	if res, err := vm.Call("main"); err != nil || res != 7 {
		t.Fatalf("Call = %d, %v", res, err)
	}

	img2, stats2, err := BuildCompartmentedOptimized(`
.name disch-ro
.func main
main:
    st   [r10+49160], r1  ; constant address, but in the ro region
    ret
`, testSigner())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if stats2.StaticallySafe != 0 {
		t.Fatalf("ro write discharged (StaticallySafe = %d)", stats2.StaticallySafe)
	}
	vm2, err := NewVM(img2, Config{})
	if err != nil {
		t.Fatalf("NewVM: %v", err)
	}
	if _, err := vm2.Call("main"); !IsCompartmentViolation(err) {
		t.Fatalf("ro write: err = %v, want compartment violation", err)
	}
}

func TestCompartmentOptimizerRefusesBoundarySpan(t *testing.T) {
	// An 8-byte access whose last byte crosses from heap into the share
	// region is contained by no single region: not dischargeable, and
	// trapped at run time.
	vm, err := NewVM(mustBuildCompartmentedOptimized(t, `
.name span
.func main
main:
    ld   r0, [r10+40956]  ; heap ends at 40960 in the default layout
    ret
`), Config{})
	if err != nil {
		t.Fatalf("NewVM: %v", err)
	}
	if _, err := vm.Call("main"); !IsCompartmentViolation(err) {
		t.Fatalf("boundary-spanning load: err = %v, want compartment violation", err)
	}
}

func mustBuildCompartmentedOptimized(t *testing.T, src string) *Image {
	t.Helper()
	img, stats, err := BuildCompartmentedOptimized(src, testSigner())
	if err != nil {
		t.Fatalf("BuildCompartmentedOptimized: %v", err)
	}
	if stats.StaticallySafe != 0 {
		t.Fatalf("boundary-spanning access discharged (StaticallySafe = %d)", stats.StaticallySafe)
	}
	return img
}

func TestCompartmentCustomLayoutFromSource(t *testing.T) {
	vm := buildComp(t, `
.name custom
.layout 8192
.region heap  heap  0    4096 rw
.region ro    ro    4096 2048 r
.region stack stack 6144 2048 rw
.func main
main:
    movi r1, 4096
    add  r1, r1, r10
    st   [r1+0], r2      ; write into ro: trapped
    ret
`)
	if got := vm.HeapSize(); got != 8192 {
		t.Fatalf("segment size = %d, want the layout's 8192", got)
	}
	if _, err := vm.Call("main"); !IsCompartmentViolation(err) {
		t.Fatal("custom-layout ro write not trapped")
	}
}

func TestCompartmentVMRejectsMismatchedSegSize(t *testing.T) {
	img, _, err := BuildCompartmented(`
.name mismatch
.func main
main:
    ret
`, testSigner())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := NewVM(img, Config{SegSize: 128 << 10}); err == nil {
		t.Fatal("VM accepted a segment size the layout's proofs do not cover")
	}
}

func TestCompartmentEncodingRoundTrip(t *testing.T) {
	img, _, err := BuildCompartmented(`
.name enc
.func main
main:
    st [r10+0], r1
    ret
`, testSigner())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	enc := img.Encode()
	if !strings.HasPrefix(string(enc), "GIR2") {
		t.Fatalf("compartmented image magic = %q, want GIR2", enc[:4])
	}
	back, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if back.Layout == nil || len(back.Layout.Regions) != len(img.Layout.Regions) {
		t.Fatal("layout lost in round trip")
	}
	if !bytes.Equal(back.Encode(), enc) {
		t.Fatal("re-encode differs")
	}
	signed, err := DecodeSigned(img.EncodeSigned())
	if err != nil {
		t.Fatalf("DecodeSigned: %v", err)
	}
	if !testSigner().Verify(signed) {
		t.Fatal("signature does not survive the round trip")
	}

	// Layout-less images keep the GIR1 stream (and thus their existing
	// signatures and checkpoint bytes) exactly.
	flat := mustAssemble(t, `
.name flat
.func main
main:
    ret
`)
	if !strings.HasPrefix(string(flat.Encode()), "GIR1") {
		t.Fatalf("flat image magic = %q, want GIR1", flat.Encode()[:4])
	}
}

func TestVerifierRejectsSandboxInCompartment(t *testing.T) {
	img, _, err := BuildCompartmented(`
.name mixed
.func main
main:
    st [r10+0], r1
    ret
`, testSigner())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Hand-edit the CHKW into a flat SANDBOX mask: same register, but a
	// mask can swing the address into any region.
	for i := range img.Code {
		if img.Code[i].Op == CHKW {
			img.Code[i] = Instr{Op: SANDBOX, Rd: img.Code[i].Rd}
		}
	}
	if err := Verify(img); err == nil {
		t.Fatal("sandbox mask accepted in a compartmented image")
	}
}

func TestVerifierRejectsWidthConfusion(t *testing.T) {
	img, _, err := BuildCompartmented(`
.name width
.func main
main:
    st [r1+0], r2    ; dynamic address: must carry a full-width check
    ret
`, testSigner())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Narrow the 8-byte store's check to 1 byte: the last 7 bytes would
	// be unchecked.
	for i := range img.Code {
		if img.Code[i].Op == CHKW {
			img.Code[i].Imm = 1
		}
	}
	if err := Verify(img); err == nil {
		t.Fatal("width-confused check accepted")
	}
}

func TestVerifierRejectsChecksWithoutLayout(t *testing.T) {
	img := &Image{
		Name: "orphan-check",
		Code: []Instr{
			{Op: CHKR, Rd: 1, Imm: 8},
			{Op: LD, Rd: 0, Rs1: 1},
			{Op: RET},
		},
		Funcs: map[string]int{"main": 0},
		Safe:  true,
	}
	if err := Verify(img); err == nil {
		t.Fatal("region checks accepted in an image without a layout")
	}
}
