package sfi

// CallTable is the run-time check behind indirect calls: a sparse
// open-addressing hash table of valid target addresses. The paper checks
// C++ virtual calls by "looking up the address of the target function in
// a hash table containing the addresses of all graft-callable
// functions... through the use of a sparse open hash table we find our
// average cost is ten to fifteen cycles per indirect function call"
// (§3.3). Here the table holds the graft's registered indirect-call
// targets; the same structure is reused by the kernel's graft-callable
// function registry.
type CallTable struct {
	slots   []int64 // -1 = empty
	mask    uint64
	n       int
	probes  int64 // cumulative probe count, for the cost model
	lookups int64
}

// NewCallTable builds a table containing the given targets, sized sparse
// (load factor <= 1/4) so probe chains stay short.
func NewCallTable(targets []int) *CallTable {
	size := 8
	for size < 4*len(targets)+1 {
		size *= 2
	}
	t := &CallTable{slots: make([]int64, size), mask: uint64(size - 1)}
	for i := range t.slots {
		t.slots[i] = -1
	}
	for _, target := range targets {
		t.insert(int64(target))
	}
	return t
}

func hash64(v uint64) uint64 {
	// Fibonacci hashing; good dispersion for small integer keys.
	v ^= v >> 33
	v *= 0x9E3779B97F4A7C15
	v ^= v >> 29
	return v
}

func (t *CallTable) insert(v int64) {
	if v < 0 {
		panic("sfi: negative call target")
	}
	i := hash64(uint64(v)) & t.mask
	for t.slots[i] != -1 {
		if t.slots[i] == v {
			return
		}
		i = (i + 1) & t.mask
	}
	t.slots[i] = v
	t.n++
}

// Contains probes for v, counting probes for the cost model.
func (t *CallTable) Contains(v int64) bool {
	t.lookups++
	if v < 0 {
		t.probes++
		return false
	}
	i := hash64(uint64(v)) & t.mask
	for {
		t.probes++
		s := t.slots[i]
		if s == v {
			return true
		}
		if s == -1 {
			return false
		}
		i = (i + 1) & t.mask
	}
}

// Len returns the number of registered targets.
func (t *CallTable) Len() int { return t.n }

// AvgProbes returns the mean probe-chain length observed so far.
func (t *CallTable) AvgProbes() float64 {
	if t.lookups == 0 {
		return 0
	}
	return float64(t.probes) / float64(t.lookups)
}
