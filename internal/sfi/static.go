package sfi

// Static discharge of SFI checks.
//
// The paper notes the high cost of its unoptimized SFI tool ("this
// overhead is not surprising, given the lack of optimization in our
// software fault isolation tool", §4.4). This file implements the
// classic optimization: a forward dataflow analysis that tracks, per
// basic block, which registers provably hold "segment base + known
// constant" values. A load or store whose effective address is provably
// inside [base, base+MinSegSize-8] needs no run-time mask at all — the
// check is discharged statically, the way Wahbe et al. discharge checks
// on dedicated registers.
//
// Soundness rests on three facts, all re-checked independently by the
// verifier (so a hand-crafted "optimized" image cannot cheat):
//
//  1. r10 (RegHeapBase) is architecturally set to the segment base on
//     entry; if the program never writes r10, its value is base+0
//     everywhere.
//  2. Only MOV and ADDI propagate the base+const state; every other
//     write to a register clears it. Offsets are bounded so arithmetic
//     cannot overflow into validity.
//  3. At every landing point (branch target, entry point, call target,
//     return address) the state resets to "unknown except r10", so no
//     jump can smuggle an unchecked register past its mask. A CALL's
//     return continues with reset state because the callee may clobber
//     anything.
//
// MinSegSize is the smallest segment a VM may provide, so a statically
// valid offset is valid in every execution environment.

// MinSegSize is the smallest graft segment NewVM accepts. Static
// discharge proves addresses within [0, MinSegSize-8].
const MinSegSize = 4096

// regState is the abstract value of one register: either unknown, or
// base+delta.
type regState struct {
	known bool
	delta int64
}

// staticEval runs the dataflow over an image, invoking access(pc, ins,
// ok) for every memory instruction, where ok reports whether the access
// is statically in-segment. It returns whether r10 is globally
// untouched (the precondition for any discharge at all).
func staticEval(img *Image, access func(pc int, ins Instr, ok bool)) bool {
	baseStable := true
	for _, ins := range img.Code {
		if writesReg(ins, RegHeapBase) {
			baseStable = false
			break
		}
	}
	landing := landingPoints(img)
	var st [NumRegs]regState
	reset := func() {
		st = [NumRegs]regState{}
		if baseStable {
			st[RegHeapBase] = regState{known: true, delta: 0}
		}
	}
	reset()
	for pc, ins := range img.Code {
		if landing[pc] {
			reset()
		}
		// Classify the access before applying the instruction's own
		// register effects (the address is read first).
		if access != nil {
			switch ins.Op {
			case LD, LDB, ST, STB:
				s := st[ins.Rs1]
				off := s.delta + ins.Imm
				width := int64(8)
				if ins.Op == LDB || ins.Op == STB {
					width = 1
				}
				ok := baseStable && s.known &&
					s.delta >= -maxDelta && s.delta <= maxDelta
				if ok {
					if img.Layout != nil {
						// Compartmented image: the proof is against the
						// exact region table — one region must wholly
						// contain the access with the right permission,
						// so a discharge can never cross a region
						// boundary or launder a write into RO/share
						// space. Grants are dispatch-dynamic and never
						// statically provable.
						write := ins.Op == ST || ins.Op == STB
						ok = img.Layout.allows(off, width, write)
					} else {
						ok = off >= 0 && off+width <= MinSegSize
					}
				}
				access(pc, ins, ok)
			case PUSH, POP:
				access(pc, ins, false) // sp is never statically tracked
			}
		}
		applyEffect(&st, ins)
		// Control transfers invalidate everything: the next instruction
		// is reached either by fall-through from elsewhere (CALL/CALLR
		// return with arbitrary callee effects) or is itself a landing
		// point.
		switch ins.Op {
		case CALL, CALLR, CALLK, JMP, RET, HALT:
			reset()
		}
	}
	return baseStable
}

// maxDelta bounds tracked deltas so repeated ADDI cannot approach
// overflow.
const maxDelta = 1 << 30

// applyEffect updates the abstract state for one instruction.
func applyEffect(st *[NumRegs]regState, ins Instr) {
	switch ins.Op {
	case MOV:
		st[ins.Rd] = st[ins.Rs1]
	case ADDI:
		s := st[ins.Rs1]
		if s.known && ins.Imm >= -maxDelta && ins.Imm <= maxDelta &&
			s.delta+ins.Imm >= -maxDelta && s.delta+ins.Imm <= maxDelta {
			st[ins.Rd] = regState{known: true, delta: s.delta + ins.Imm}
		} else {
			st[ins.Rd] = regState{}
		}
	case SANDBOX:
		// A masked register is in-segment but at an unknown offset;
		// that helps the masked-access verifier, not static discharge.
		st[ins.Rd] = regState{}
	default:
		if d, ok := destReg(ins); ok {
			st[d] = regState{}
		}
	}
}

// destReg reports the register an instruction writes, if any.
func destReg(ins Instr) (uint8, bool) {
	switch ins.Op {
	case MOVI, LEA, MOV, ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR,
		ADDI, ANDI, CMPEQ, CMPLT, CMPLE, LD, LDB, POP, SANDBOX:
		return ins.Rd, true
	case CALLK:
		return 0, true // result register r0
	case PUSH:
		return RegSP, true
	}
	return 0, false
}

// writesReg reports whether ins writes reg (PUSH/POP also move sp).
func writesReg(ins Instr, reg uint8) bool {
	if d, ok := destReg(ins); ok && d == reg {
		return true
	}
	if (ins.Op == PUSH || ins.Op == POP) && reg == RegSP {
		return true
	}
	return false
}

// landingPoints collects every address control flow can reach other
// than by linear fall-through.
func landingPoints(img *Image) map[int]bool {
	landing := make(map[int]bool)
	for _, pc := range img.CallTargets {
		landing[pc] = true
	}
	for _, pc := range img.Funcs {
		landing[pc] = true
	}
	for pc, ins := range img.Code {
		if ins.immIsCodeAddr() && ins.Op != LEA {
			landing[int(ins.Imm)] = true
		}
		if ins.Op == CALL || ins.Op == CALLR {
			landing[pc+1] = true
		}
	}
	return landing
}
