package sfi

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates GIR assembly source into an (unsafe, unsigned)
// image. The source format is line-oriented:
//
//	; comment (also //)
//	.name encrypt           ; image name
//	.import fs.prefetch     ; kernel symbol, callable via callk
//	.func main              ; export label main as an entry point
//	.target helper          ; register label as an indirect-call target
//	.data "raw bytes"       ; append string bytes to the initial heap
//	.dataword 42            ; append a little-endian 64-bit word
//	.space 256              ; append zero bytes
//	.layout 65536           ; start a compartment layout for this segment size
//	.region heap heap 0 40960 rw      ; name kind off size perm
//	.region share share 40960 8192 none
//	.region ro ro 49152 8192 r
//	.region stack stack 57344 8192 rw
//
//	main:
//	    movi r1, 4096
//	    ld   r2, [r1+8]
//	    st   [r1+0], r2
//	    lea  r3, helper
//	    callr r3
//	    callk fs.prefetch
//	    jnz  r2, main
//	    ret
//
// Registers are r0–r11 and r14; sp names the stack pointer; r12/r13 are
// reserved for the SFI rewriter and rejected in source.
func Assemble(src string) (*Image, error) {
	a := &assembler{
		img:     &Image{Funcs: make(map[string]int)},
		labels:  make(map[string]int),
		imports: make(map[string]int),
	}
	if err := a.run(src); err != nil {
		return nil, err
	}
	return a.img, nil
}

type fixup struct {
	pc    int
	label string
	line  int
}

type assembler struct {
	img     *Image
	labels  map[string]int
	imports map[string]int
	fixups  []fixup
	funcs   []string // labels declared .func, resolved at the end
	targets []string // labels declared .target
	line    int
}

func (a *assembler) errf(format string, args ...any) error {
	return fmt.Errorf("sfi: asm line %d: %s", a.line, fmt.Sprintf(format, args...))
}

func (a *assembler) run(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 || strings.ContainsAny(line[:colon], " \t\",[") {
				break
			}
			name := line[:colon]
			if !validIdent(name) {
				return a.errf("bad label %q", name)
			}
			if _, dup := a.labels[name]; dup {
				return a.errf("duplicate label %q", name)
			}
			a.labels[name] = len(a.img.Code)
			line = strings.TrimSpace(line[colon+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if err := a.directive(line); err != nil {
				return err
			}
			continue
		}
		if err := a.instruction(line); err != nil {
			return err
		}
	}
	return a.finish()
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case ';':
			if !inStr {
				return line[:i]
			}
		case '/':
			if !inStr && i+1 < len(line) && line[i+1] == '/' {
				return line[:i]
			}
		}
	}
	return line
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) directive(line string) error {
	fields := strings.SplitN(line, " ", 2)
	arg := ""
	if len(fields) == 2 {
		arg = strings.TrimSpace(fields[1])
	}
	switch fields[0] {
	case ".name":
		if arg == "" {
			return a.errf(".name needs an argument")
		}
		a.img.Name = arg
	case ".import":
		if !validIdent(arg) {
			return a.errf("bad import symbol %q", arg)
		}
		if _, dup := a.imports[arg]; dup {
			return a.errf("duplicate import %q", arg)
		}
		a.imports[arg] = len(a.img.Symbols)
		a.img.Symbols = append(a.img.Symbols, arg)
	case ".func":
		if !validIdent(arg) {
			return a.errf("bad .func label %q", arg)
		}
		a.funcs = append(a.funcs, arg)
	case ".target":
		if !validIdent(arg) {
			return a.errf("bad .target label %q", arg)
		}
		a.targets = append(a.targets, arg)
	case ".data":
		s, err := strconv.Unquote(arg)
		if err != nil {
			return a.errf(".data wants a quoted string: %v", err)
		}
		a.img.Data = append(a.img.Data, s...)
	case ".dataword":
		v, err := strconv.ParseInt(arg, 0, 64)
		if err != nil {
			return a.errf(".dataword wants an integer: %v", err)
		}
		var w [8]byte
		for i := 0; i < 8; i++ {
			w[i] = byte(uint64(v) >> (8 * i))
		}
		a.img.Data = append(a.img.Data, w[:]...)
	case ".space":
		n, err := strconv.ParseInt(arg, 0, 32)
		if err != nil || n < 0 {
			return a.errf(".space wants a non-negative integer")
		}
		a.img.Data = append(a.img.Data, make([]byte, n)...)
	case ".layout":
		if a.img.Layout != nil {
			return a.errf("duplicate .layout")
		}
		v, err := strconv.ParseInt(arg, 0, 64)
		if err != nil {
			return a.errf(".layout wants a segment size: %v", err)
		}
		a.img.Layout = &Layout{SegSize: v}
	case ".region":
		if a.img.Layout == nil {
			return a.errf(".region before .layout")
		}
		f := strings.Fields(arg)
		if len(f) != 5 {
			return a.errf(".region wants: name kind off size perm")
		}
		kind, err := ParseRegionKind(f[1])
		if err != nil {
			return a.errf("%v", err)
		}
		off, err1 := strconv.ParseInt(f[2], 0, 64)
		size, err2 := strconv.ParseInt(f[3], 0, 64)
		if err1 != nil || err2 != nil {
			return a.errf(".region wants integer off/size")
		}
		perm, err := ParsePerm(f[4])
		if err != nil {
			return a.errf("%v", err)
		}
		a.img.Layout.Regions = append(a.img.Layout.Regions,
			Region{Name: f[0], Kind: kind, Off: off, Size: size, Perm: perm})
	default:
		return a.errf("unknown directive %s", fields[0])
	}
	return nil
}

func (a *assembler) instruction(line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(mnemonic)
	var operands []string
	rest = strings.TrimSpace(rest)
	if rest != "" {
		for _, o := range strings.Split(rest, ",") {
			operands = append(operands, strings.TrimSpace(o))
		}
	}
	op, ok := opByName(mnemonic)
	if !ok {
		return a.errf("unknown instruction %q", mnemonic)
	}
	ins := Instr{Op: op}
	need := func(n int) error {
		if len(operands) != n {
			return a.errf("%s wants %d operands, got %d", mnemonic, n, len(operands))
		}
		return nil
	}
	var err error
	switch op {
	case NOP, RET, HALT:
		err = need(0)
	case MOVI:
		if err = need(2); err == nil {
			if ins.Rd, err = a.reg(operands[0]); err == nil {
				ins.Imm, err = a.imm(operands[1])
			}
		}
	case LEA:
		if err = need(2); err == nil {
			if ins.Rd, err = a.reg(operands[0]); err == nil {
				a.fixups = append(a.fixups, fixup{pc: len(a.img.Code), label: operands[1], line: a.line})
			}
		}
	case MOV:
		if err = need(2); err == nil {
			if ins.Rd, err = a.reg(operands[0]); err == nil {
				ins.Rs1, err = a.reg(operands[1])
			}
		}
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, CMPEQ, CMPLT, CMPLE:
		if err = need(3); err == nil {
			if ins.Rd, err = a.reg(operands[0]); err == nil {
				if ins.Rs1, err = a.reg(operands[1]); err == nil {
					ins.Rs2, err = a.reg(operands[2])
				}
			}
		}
	case ADDI, ANDI:
		if err = need(3); err == nil {
			if ins.Rd, err = a.reg(operands[0]); err == nil {
				if ins.Rs1, err = a.reg(operands[1]); err == nil {
					ins.Imm, err = a.imm(operands[2])
				}
			}
		}
	case JMP:
		if err = need(1); err == nil {
			a.fixups = append(a.fixups, fixup{pc: len(a.img.Code), label: operands[0], line: a.line})
		}
	case JZ, JNZ:
		if err = need(2); err == nil {
			if ins.Rs1, err = a.reg(operands[0]); err == nil {
				a.fixups = append(a.fixups, fixup{pc: len(a.img.Code), label: operands[1], line: a.line})
			}
		}
	case LD, LDB:
		if err = need(2); err == nil {
			if ins.Rd, err = a.reg(operands[0]); err == nil {
				ins.Rs1, ins.Imm, err = a.memOperand(operands[1])
			}
		}
	case ST, STB:
		if err = need(2); err == nil {
			if ins.Rs1, ins.Imm, err = a.memOperand(operands[0]); err == nil {
				ins.Rs2, err = a.reg(operands[1])
			}
		}
	case PUSH:
		if err = need(1); err == nil {
			ins.Rs1, err = a.reg(operands[0])
		}
	case POP:
		if err = need(1); err == nil {
			ins.Rd, err = a.reg(operands[0])
		}
	case CALL:
		if err = need(1); err == nil {
			a.fixups = append(a.fixups, fixup{pc: len(a.img.Code), label: operands[0], line: a.line})
		}
	case CALLR:
		if err = need(1); err == nil {
			ins.Rs1, err = a.reg(operands[0])
		}
	case CALLK:
		if err = need(1); err == nil {
			idx, ok := a.imports[operands[0]]
			if !ok {
				err = a.errf("callk of %q without .import", operands[0])
			}
			ins.Imm = int64(idx)
		}
	case SANDBOX:
		if err = need(1); err == nil {
			ins.Rd, err = a.reg(operands[0])
		}
	case CHKCALL:
		if err = need(1); err == nil {
			ins.Rs1, err = a.reg(operands[0])
		}
	case CHKR, CHKW, CHKS:
		if err = need(2); err == nil {
			if ins.Rd, err = a.reg(operands[0]); err == nil {
				ins.Imm, err = a.imm(operands[1])
			}
		}
	default:
		err = a.errf("unhandled opcode %s", op)
	}
	if err != nil {
		return err
	}
	a.img.Code = append(a.img.Code, ins)
	return nil
}

func opByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return Op(op), true
		}
	}
	return 0, false
}

func (a *assembler) reg(s string) (uint8, error) {
	switch strings.ToLower(s) {
	case "sp":
		return RegSP, nil
	case "s0", "s1", "r12", "r13":
		return 0, a.errf("register %s is reserved for the SFI rewriter", s)
	}
	if !strings.HasPrefix(s, "r") && !strings.HasPrefix(s, "R") {
		return 0, a.errf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, a.errf("bad register %q", s)
	}
	if n == RegScratch0 || n == RegScratch1 {
		return 0, a.errf("register %s is reserved for the SFI rewriter", s)
	}
	return uint8(n), nil
}

func (a *assembler) imm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, a.errf("bad immediate %q", s)
	}
	return v, nil
}

// memOperand parses "[reg]", "[reg+off]" or "[reg-off]".
func (a *assembler) memOperand(s string) (uint8, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, a.errf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := a.reg(strings.TrimSpace(inner))
		return r, 0, err
	}
	r, err := a.reg(strings.TrimSpace(inner[:sep]))
	if err != nil {
		return 0, 0, err
	}
	off, err := a.imm(strings.TrimSpace(inner[sep:]))
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}

func (a *assembler) finish() error {
	for _, f := range a.fixups {
		pc, ok := a.labels[f.label]
		if !ok {
			return fmt.Errorf("sfi: asm line %d: undefined label %q", f.line, f.label)
		}
		a.img.Code[f.pc].Imm = int64(pc)
	}
	for _, name := range a.funcs {
		pc, ok := a.labels[name]
		if !ok {
			return fmt.Errorf("sfi: asm: .func of undefined label %q", name)
		}
		a.img.Funcs[name] = pc
		a.img.CallTargets = append(a.img.CallTargets, pc)
	}
	for _, name := range a.targets {
		pc, ok := a.labels[name]
		if !ok {
			return fmt.Errorf("sfi: asm: .target of undefined label %q", name)
		}
		a.img.CallTargets = append(a.img.CallTargets, pc)
	}
	if len(a.img.Funcs) == 0 {
		return fmt.Errorf("sfi: asm: image %q exports no entry points (.func)", a.img.Name)
	}
	return nil
}
