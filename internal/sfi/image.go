package sfi

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Image is a compiled graft: code, initial heap data, the kernel symbols
// it imports, its exported entry points, and the set of valid
// indirect-call targets. After processing by the rewriter it also
// carries Safe=true and, once signed, the tool's signature.
//
// The kernel loader (package graft) accepts an image only if the
// signature verifies and Safe is set — the paper's "VINO must ensure
// that code loaded into the kernel has been processed by MiSFIT".
type Image struct {
	// Name identifies the graft in diagnostics.
	Name string
	// Code is the instruction stream.
	Code []Instr
	// Data is copied to the bottom of the graft heap at load time.
	Data []byte
	// Symbols are the kernel functions this graft calls; CALLK's Imm
	// indexes this list. The dynamic linker resolves each name against
	// the kernel's graft-callable list.
	Symbols []string
	// Funcs maps exported entry-point names to code addresses.
	Funcs map[string]int
	// CallTargets are the code addresses that CALLR may reach.
	CallTargets []int
	// Layout, when non-nil, is the compartment description: the segment
	// is split into typed regions and the rewriter lowers accesses to
	// per-region bounds+permission checks instead of the flat SANDBOX
	// mask. Nil keeps the classic flat pipeline (and the GIR1 encoding)
	// bit-for-bit.
	Layout *Layout
	// Safe records that the image has passed the SFI rewriter.
	Safe bool
	// Sig is the toolchain signature over the canonical encoding.
	Sig []byte
}

// Clone returns a deep copy of the image.
func (img *Image) Clone() *Image {
	out := &Image{
		Name:        img.Name,
		Code:        append([]Instr(nil), img.Code...),
		Data:        append([]byte(nil), img.Data...),
		Symbols:     append([]string(nil), img.Symbols...),
		CallTargets: append([]int(nil), img.CallTargets...),
		Layout:      img.Layout.Clone(),
		Safe:        img.Safe,
		Sig:         append([]byte(nil), img.Sig...),
	}
	out.Funcs = make(map[string]int, len(img.Funcs))
	for k, v := range img.Funcs {
		out.Funcs[k] = v
	}
	return out
}

// Entry returns the code address of the named entry point.
func (img *Image) Entry(name string) (int, error) {
	pc, ok := img.Funcs[name]
	if !ok {
		return 0, fmt.Errorf("sfi: image %q has no entry point %q", img.Name, name)
	}
	return pc, nil
}

// imageMagic is the classic (flat-sandbox) encoding; imageMagicV2
// appends a compartment region table. Layout-less images keep the GIR1
// byte stream exactly, so their signatures and durable checkpoints are
// unchanged by the compartment feature.
const (
	imageMagic   = "GIR1"
	imageMagicV2 = "GIR2"
)

// Encode serialises the image (without the signature) in the canonical
// form used both for file I/O and as the signing payload.
func (img *Image) Encode() []byte {
	var b bytes.Buffer
	if img.Layout != nil {
		b.WriteString(imageMagicV2)
	} else {
		b.WriteString(imageMagic)
	}
	writeString := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		b.Write(n[:])
		b.WriteString(s)
	}
	writeU32 := func(v uint32) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], v)
		b.Write(n[:])
	}
	writeI64 := func(v int64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(v))
		b.Write(n[:])
	}
	writeString(img.Name)
	if img.Safe {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	writeU32(uint32(len(img.Code)))
	for _, ins := range img.Code {
		b.WriteByte(byte(ins.Op))
		b.WriteByte(ins.Rd)
		b.WriteByte(ins.Rs1)
		b.WriteByte(ins.Rs2)
		writeI64(ins.Imm)
	}
	writeU32(uint32(len(img.Data)))
	b.Write(img.Data)
	writeU32(uint32(len(img.Symbols)))
	for _, s := range img.Symbols {
		writeString(s)
	}
	names := make([]string, 0, len(img.Funcs))
	for n := range img.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	writeU32(uint32(len(names)))
	for _, n := range names {
		writeString(n)
		writeU32(uint32(img.Funcs[n]))
	}
	writeU32(uint32(len(img.CallTargets)))
	for _, t := range img.CallTargets {
		writeU32(uint32(t))
	}
	if img.Layout != nil {
		writeI64(img.Layout.SegSize)
		writeU32(uint32(len(img.Layout.Regions)))
		for _, r := range img.Layout.Regions {
			writeString(r.Name)
			b.WriteByte(byte(r.Kind))
			writeI64(r.Off)
			writeI64(r.Size)
			b.WriteByte(byte(r.Perm))
		}
	}
	return b.Bytes()
}

// EncodeSigned serialises the image followed by its signature, the
// on-disk format produced by cmd/misfit.
func (img *Image) EncodeSigned() []byte {
	body := img.Encode()
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(img.Sig)))
	return append(append(body, n[:]...), img.Sig...)
}

// errTruncated reports a short image file.
var errTruncated = errors.New("sfi: truncated image")

// Decode parses a canonical image encoding (as produced by Encode,
// without signature).
func Decode(data []byte) (*Image, error) {
	img, rest, err := decodeBody(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("sfi: %d trailing bytes after image", len(rest))
	}
	return img, nil
}

// DecodeSigned parses the signed on-disk format.
func DecodeSigned(data []byte) (*Image, error) {
	img, rest, err := decodeBody(data)
	if err != nil {
		return nil, err
	}
	if len(rest) < 4 {
		return nil, errTruncated
	}
	n := binary.LittleEndian.Uint32(rest[:4])
	rest = rest[4:]
	if uint32(len(rest)) != n {
		return nil, fmt.Errorf("sfi: signature length mismatch: header %d, actual %d", n, len(rest))
	}
	img.Sig = append([]byte(nil), rest...)
	return img, nil
}

func decodeBody(data []byte) (*Image, []byte, error) {
	r := &reader{data: data}
	magic := string(r.bytes(4))
	if magic != imageMagic && magic != imageMagicV2 {
		return nil, nil, errors.New("sfi: bad image magic")
	}
	img := &Image{Funcs: make(map[string]int)}
	img.Name = r.str()
	img.Safe = r.byte() != 0
	nCode := r.u32()
	if r.err == nil && int(nCode) > len(data)/12 {
		return nil, nil, fmt.Errorf("sfi: implausible code length %d", nCode)
	}
	for i := 0; i < int(nCode) && r.err == nil; i++ {
		var ins Instr
		ins.Op = Op(r.byte())
		ins.Rd = r.byte()
		ins.Rs1 = r.byte()
		ins.Rs2 = r.byte()
		ins.Imm = r.i64()
		img.Code = append(img.Code, ins)
	}
	nData := r.u32()
	if r.err == nil && int(nData) > len(data) {
		return nil, nil, fmt.Errorf("sfi: implausible data length %d", nData)
	}
	img.Data = append([]byte(nil), r.bytes(int(nData))...)
	nSym := r.u32()
	for i := 0; i < int(nSym) && r.err == nil; i++ {
		img.Symbols = append(img.Symbols, r.str())
	}
	nFuncs := r.u32()
	for i := 0; i < int(nFuncs) && r.err == nil; i++ {
		name := r.str()
		pc := r.u32()
		img.Funcs[name] = int(pc)
	}
	nTargets := r.u32()
	for i := 0; i < int(nTargets) && r.err == nil; i++ {
		img.CallTargets = append(img.CallTargets, int(r.u32()))
	}
	if magic == imageMagicV2 && r.err == nil {
		l := &Layout{SegSize: r.i64()}
		nRegions := r.u32()
		if r.err == nil && int(nRegions) > len(data) {
			return nil, nil, fmt.Errorf("sfi: implausible region count %d", nRegions)
		}
		for i := 0; i < int(nRegions) && r.err == nil; i++ {
			var reg Region
			reg.Name = r.str()
			reg.Kind = RegionKind(r.byte())
			reg.Off = r.i64()
			reg.Size = r.i64()
			reg.Perm = Perm(r.byte())
			l.Regions = append(l.Regions, reg)
		}
		img.Layout = l
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	return img, r.data[r.off:], nil
}

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || r.off+n > len(r.data) {
		if r.err == nil {
			r.err = errTruncated
		}
		return make([]byte, n)
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) byte() byte  { return r.bytes(1)[0] }
func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }
func (r *reader) i64() int64  { return int64(binary.LittleEndian.Uint64(r.bytes(8))) }
func (r *reader) str() string {
	n := r.u32()
	if r.err == nil && int(n) > len(r.data)-r.off {
		r.err = errTruncated
		return ""
	}
	return string(r.bytes(int(n)))
}

// Signer produces and checks toolchain signatures. The paper uses a
// cryptographic digital signature computed by MiSFIT and verified by the
// kernel loader; we model it as an HMAC-SHA256 under a key shared
// between the trusted toolchain and the kernel.
type Signer struct {
	key []byte
}

// NewSigner creates a signer with the given key.
func NewSigner(key []byte) *Signer {
	return &Signer{key: append([]byte(nil), key...)}
}

// Sign stores the signature for the image's current contents.
func (s *Signer) Sign(img *Image) {
	img.Sig = s.mac(img)
}

// Verify reports whether the image's signature matches its contents
// under this signer's key.
func (s *Signer) Verify(img *Image) bool {
	return len(img.Sig) > 0 && hmac.Equal(img.Sig, s.mac(img))
}

func (s *Signer) mac(img *Image) []byte {
	m := hmac.New(sha256.New, s.key)
	m.Write(img.Encode())
	return m.Sum(nil)
}
