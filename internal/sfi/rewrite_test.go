package sfi

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRewriteInsertsSandboxBeforeEveryAccess(t *testing.T) {
	img := mustAssemble(t, `
.name m
.func main
main:
    ld r1, [r2+8]
    st [r3-4], r1
    ldb r4, [r2]
    stb [r2+1], r4
    push r1
    pop r5
    ret
`)
	safe, stats, err := Rewrite(img)
	if err != nil {
		t.Fatal(err)
	}
	if !safe.Safe {
		t.Fatal("rewritten image not marked safe")
	}
	if stats.MemOpsProtected != 6 {
		t.Fatalf("protected %d mem ops, want 6", stats.MemOpsProtected)
	}
	if err := Verify(safe); err != nil {
		t.Fatalf("verifier rejects rewriter output: %v", err)
	}
	// Every memory access must follow its sandbox.
	for pc, ins := range safe.Code {
		if ins.accessesMem() {
			if pc == 0 || safe.Code[pc-1].Op != SANDBOX {
				t.Fatalf("pc=%d: %v lacks preceding sandbox", pc, ins)
			}
		}
	}
}

func TestRewriteProtectsIndirectCalls(t *testing.T) {
	img := mustAssemble(t, `
.name m
.func main
.target f
main:
    lea r1, f
    callr r1
    ret
f:
    ret
`)
	safe, stats, err := Rewrite(img)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndirectProtected != 1 {
		t.Fatalf("protected %d indirect calls, want 1", stats.IndirectProtected)
	}
	if err := Verify(safe); err != nil {
		t.Fatal(err)
	}
	// And the rewritten indirect call still works: LEA was remapped
	// along with the call-target table.
	vm, _ := NewVM(safe, Config{})
	if _, err := vm.Call("main"); err != nil {
		t.Fatalf("remapped indirect call failed: %v", err)
	}
}

func TestRewriteRemapsBranches(t *testing.T) {
	src := `
.name loop
.func main
main:
    movi r0, 0
    movi r1, 5
loop:
    ld r2, [r10+0]
    add r0, r0, r1
    addi r1, r1, -1
    jnz r1, loop
    ret
`
	img := mustAssemble(t, src)
	safe, _, err := Rewrite(img)
	if err != nil {
		t.Fatal(err)
	}
	unsafeVM, _ := NewVM(img, Config{})
	safeVM, _ := NewVM(safe, Config{})
	a, err := unsafeVM.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	b, err := safeVM.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a != 15 {
		t.Fatalf("unsafe=%d safe=%d, want 15", a, b)
	}
}

func TestRewriteClearsSignature(t *testing.T) {
	img := mustAssemble(t, ".name s\n.func m\nm:\n ret")
	NewSigner([]byte("k")).Sign(img)
	safe, _, err := Rewrite(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(safe.Sig) != 0 {
		t.Fatal("stale signature survived rewrite")
	}
}

func TestRewriteCostOverheadStructure(t *testing.T) {
	// A store-dense graft (encryption-like) must pay proportionally more
	// SFI overhead than a control-dense one — the paper's Table 6 vs
	// Table 3 contrast.
	dense := mustAssemble(t, `
.name dense
.func main
main:
    movi r1, 64
loop:
    ld r2, [r10+0]
    st [r10+8], r2
    addi r1, r1, -1
    jnz r1, loop
    ret
`)
	sparse := mustAssemble(t, `
.name sparse
.func main
main:
    movi r1, 64
loop:
    add r2, r1, r1
    sub r2, r2, r1
    addi r1, r1, -1
    jnz r1, loop
    ret
`)
	ratio := func(img *Image) float64 {
		safe, _, err := Rewrite(img)
		if err != nil {
			t.Fatal(err)
		}
		u, _ := NewVM(img, Config{})
		s, _ := NewVM(safe, Config{})
		if _, err := u.Call("main"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Call("main"); err != nil {
			t.Fatal(err)
		}
		return float64(s.TotalCycles()) / float64(u.TotalCycles())
	}
	dr, sr := ratio(dense), ratio(sparse)
	if dr <= sr {
		t.Fatalf("dense overhead %.2f <= sparse overhead %.2f; SFI cost not access-proportional", dr, sr)
	}
	if dr < 1.2 {
		t.Fatalf("dense overhead %.2f too small to be realistic", dr)
	}
	if sr > 1.15 {
		t.Fatalf("sparse overhead %.2f too large", sr)
	}
}

func TestVerifyRejectsHandMadeUnsafeSafeImage(t *testing.T) {
	// An attacker marks an image Safe without rewriting it.
	img := mustAssemble(t, `
.name evil
.func main
main:
    movi r1, 0
    st [r1+0], r1
    ret
`)
	img.Safe = true
	err := Verify(img)
	if err == nil || !strings.Contains(err.Error(), "sandbox") {
		t.Fatalf("Verify = %v, want missing-sandbox complaint", err)
	}
}

func TestVerifyRejectsJumpOverSandbox(t *testing.T) {
	// Hand-crafted: a correct sandbox+store pair, but a jump lands
	// directly on the store, bypassing the mask.
	img := &Image{
		Name: "bypass",
		Code: []Instr{
			{Op: MOVI, Rd: 1, Imm: 0}, // 0
			{Op: JMP, Imm: 3},         // 1: jump straight to the store
			{Op: SANDBOX, Rd: 1},      // 2
			{Op: ST, Rs1: 1, Rs2: 0},  // 3
			{Op: RET},                 // 4
		},
		Funcs: map[string]int{"main": 0},
		Safe:  true,
	}
	err := Verify(img)
	if err == nil || !strings.Contains(err.Error(), "bypass") {
		t.Fatalf("Verify = %v, want bypass complaint", err)
	}
}

func TestVerifyRejectsChkcallOnWrongRegister(t *testing.T) {
	img := &Image{
		Name: "wrongreg",
		Code: []Instr{
			{Op: CHKCALL, Rs1: 1},
			{Op: CALLR, Rs1: 2}, // checked r1, calls through r2
			{Op: RET},
		},
		Funcs: map[string]int{"main": 0},
		Safe:  true,
	}
	if err := Verify(img); err == nil {
		t.Fatal("chkcall/callr register mismatch accepted")
	}
}

func TestVerifyRejectsRawPushInSafeImage(t *testing.T) {
	img := &Image{
		Name:  "rawpush",
		Code:  []Instr{{Op: PUSH, Rs1: 1}, {Op: RET}},
		Funcs: map[string]int{"main": 0},
		Safe:  true,
	}
	if err := Verify(img); err == nil {
		t.Fatal("raw push in safe image accepted")
	}
}

func TestVerifyRejectsOutOfRangeTargets(t *testing.T) {
	img := &Image{
		Name:  "range",
		Code:  []Instr{{Op: JMP, Imm: 99}, {Op: RET}},
		Funcs: map[string]int{"main": 0},
	}
	if err := Verify(img); err == nil {
		t.Fatal("out-of-range jump accepted")
	}
	img2 := &Image{
		Name:  "sym",
		Code:  []Instr{{Op: CALLK, Imm: 0}, {Op: RET}},
		Funcs: map[string]int{"main": 0},
	}
	if err := Verify(img2); err == nil {
		t.Fatal("callk into empty symbol table accepted")
	}
}

func TestBuildSafePipeline(t *testing.T) {
	signer := NewSigner([]byte("toolchain"))
	img, stats, err := BuildSafe(`
.name pipe
.func main
main:
    st [r10+0], r1
    ld r0, [r10+0]
    ret
`, signer)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Safe || !signer.Verify(img) {
		t.Fatal("BuildSafe output not safe+signed")
	}
	if stats.MemOpsProtected != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	vm, _ := NewVM(img, Config{})
	res, err := vm.Call("main", 123)
	if err != nil || res != 123 {
		t.Fatalf("res=%d err=%v", res, err)
	}
}

// genProgram builds a random but well-formed straight-line program mixing
// arithmetic and in-segment memory traffic, ending by returning r0.
func genProgram(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString(".name rand\n.func main\nmain:\n")
	// Seed registers deterministically from arguments and heap base.
	b.WriteString("    mov r2, r1\n    movi r3, 17\n    movi r4, 5\n")
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			fmt3(&b, "add", rng)
		case 1:
			fmt3(&b, "sub", rng)
		case 2:
			fmt3(&b, "xor", rng)
		case 3:
			fmt3(&b, "and", rng)
		case 4:
			// in-segment store at a small aligned offset
			off := rng.Intn(64) * 8
			reg := 2 + rng.Intn(3)
			b.WriteString("    addi r8, r10, " + itoa(off) + "\n")
			b.WriteString("    st [r8+0], r" + itoa(reg) + "\n")
		case 5:
			off := rng.Intn(64) * 8
			reg := 2 + rng.Intn(3)
			b.WriteString("    addi r8, r10, " + itoa(off) + "\n")
			b.WriteString("    ld r" + itoa(reg) + ", [r8+0]\n")
		case 6:
			reg := 2 + rng.Intn(3)
			b.WriteString("    push r" + itoa(reg) + "\n")
			b.WriteString("    pop r" + itoa(2+rng.Intn(3)) + "\n")
		case 7:
			b.WriteString("    cmplt r" + itoa(2+rng.Intn(3)) + ", r3, r4\n")
		}
	}
	b.WriteString("    add r0, r2, r3\n    add r0, r0, r4\n    ret\n")
	return b.String()
}

func fmt3(b *strings.Builder, op string, rng *rand.Rand) {
	b.WriteString("    " + op + " r" + itoa(2+rng.Intn(3)) + ", r" + itoa(2+rng.Intn(3)) + ", r" + itoa(2+rng.Intn(3)) + "\n")
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var d []byte
	for i > 0 {
		d = append([]byte{byte('0' + i%10)}, d...)
		i /= 10
	}
	if neg {
		return "-" + string(d)
	}
	return string(d)
}

// Property: for programs whose memory traffic stays in-segment, the SFI
// rewrite preserves semantics exactly (same result, same final heap).
func TestPropertyRewritePreservesSemantics(t *testing.T) {
	f := func(seed int64, nRaw uint8, arg int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genProgram(rng, int(nRaw%40)+5)
		img, err := Assemble(src)
		if err != nil {
			t.Logf("assemble: %v\n%s", err, src)
			return false
		}
		safe, _, err := Rewrite(img)
		if err != nil {
			return false
		}
		if err := Verify(safe); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		uvm, _ := NewVM(img, Config{})
		svm, _ := NewVM(safe, Config{})
		a, errA := uvm.Call("main", arg)
		b, errB := svm.Call("main", arg)
		if (errA == nil) != (errB == nil) {
			t.Logf("errA=%v errB=%v", errA, errB)
			return false
		}
		if errA != nil {
			return true
		}
		if a != b {
			t.Logf("result unsafe=%d safe=%d\n%s", a, b, src)
			return false
		}
		uh, sh := uvm.Heap(), svm.Heap()
		for i := range uh {
			if uh[i] != sh[i] {
				t.Logf("heap diverges at %d", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a rewritten image never touches kernel memory, no matter
// what addresses the source conjures.
func TestPropertyRewrittenNeverEscapes(t *testing.T) {
	f := func(seed int64, addrs []int64) bool {
		var b strings.Builder
		b.WriteString(".name escape\n.func main\nmain:\n")
		rng := rand.New(rand.NewSource(seed))
		for i, a := range addrs {
			if i >= 20 {
				break
			}
			b.WriteString("    movi r1, " + itoa(int(a%1_000_000)) + "\n")
			switch rng.Intn(3) {
			case 0:
				b.WriteString("    st [r1+0], r1\n")
			case 1:
				b.WriteString("    stb [r1-3], r1\n")
			case 2:
				b.WriteString("    ld r2, [r1+5]\n")
			}
		}
		b.WriteString("    ret\n")
		img, err := Assemble(b.String())
		if err != nil {
			return false
		}
		safe, _, err := Rewrite(img)
		if err != nil {
			return false
		}
		vm, _ := NewVM(safe, Config{})
		kmem := vm.KernelMemory()
		for i := range kmem {
			kmem[i] = 0x7E
		}
		if _, err := vm.Call("main"); err != nil {
			// A violation would itself be a failure: masked accesses
			// cannot trap.
			var v *Violation
			if errors.As(err, &v) {
				return false
			}
			return false
		}
		for _, bb := range kmem {
			if bb != 0x7E {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCallTableBasics(t *testing.T) {
	ct := NewCallTable([]int{3, 17, 99})
	for _, v := range []int64{3, 17, 99} {
		if !ct.Contains(v) {
			t.Fatalf("table missing %d", v)
		}
	}
	for _, v := range []int64{0, 4, 100, -1} {
		if ct.Contains(v) {
			t.Fatalf("table wrongly contains %d", v)
		}
	}
	if ct.Len() != 3 {
		t.Fatalf("len = %d", ct.Len())
	}
	if ct.AvgProbes() < 1 {
		t.Fatalf("avg probes = %f", ct.AvgProbes())
	}
}

func TestCallTableSparseProbes(t *testing.T) {
	// Sparse sizing keeps average probes short, the property behind the
	// paper's 10–15 cycle figure.
	targets := make([]int, 100)
	for i := range targets {
		targets[i] = i * 7
	}
	ct := NewCallTable(targets)
	for _, v := range targets {
		if !ct.Contains(int64(v)) {
			t.Fatalf("missing %d", v)
		}
	}
	if avg := ct.AvgProbes(); avg > 2.0 {
		t.Fatalf("avg probes = %.2f, want <= 2 for a sparse table", avg)
	}
}

func TestPropertyCallTableMembership(t *testing.T) {
	f := func(members []uint16, probes []uint16) bool {
		set := make(map[int]bool)
		var targets []int
		for _, m := range members {
			v := int(m)
			if !set[v] {
				set[v] = true
				targets = append(targets, v)
			}
		}
		ct := NewCallTable(targets)
		if ct.Len() != len(targets) {
			return false
		}
		for _, p := range probes {
			if ct.Contains(int64(p)) != set[int(p)] {
				return false
			}
		}
		for _, m := range targets {
			if !ct.Contains(int64(m)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVMDispatch(b *testing.B) {
	img := mustAssemble(b, `
.name bench
.func main
main:
loop:
    addi r1, r1, -1
    jnz r1, loop
    ret
`)
	vm, _ := NewVM(img, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Call("main", 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMMemorySafeVsUnsafe(b *testing.B) {
	src := `
.name copy
.func main
main:
    movi r1, 512
    mov r2, r10
loop:
    ld r3, [r2+0]
    st [r2+8], r3
    addi r2, r2, 8
    addi r1, r1, -1
    jnz r1, loop
    ret
`
	img, err := Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	safe, _, err := Rewrite(img)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unsafe", func(b *testing.B) {
		vm, _ := NewVM(img, Config{SegSize: 64 << 10})
		for i := 0; i < b.N; i++ {
			if _, err := vm.Call("main"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("safe", func(b *testing.B) {
		vm, _ := NewVM(safe, Config{SegSize: 64 << 10})
		for i := 0; i < b.N; i++ {
			if _, err := vm.Call("main"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
