package sfi

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOptimizerDischargesConstantBaseAccesses(t *testing.T) {
	// Every access is at a constant offset from r10: all checks
	// discharge, zero instructions added.
	img := mustAssemble(t, `
.name static
.func main
main:
    movi r2, 7
    st [r10+64], r2
    addi r3, r10, 128
    st [r3+0], r2
    mov r4, r3
    ld r0, [r4+8]
    ret
`)
	opt, stats, err := RewriteOptimized(img)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StaticallySafe != 3 || stats.MemOpsProtected != 0 {
		t.Fatalf("stats = %+v, want all 3 accesses discharged", stats)
	}
	if stats.InstrsAdded != 0 {
		t.Fatalf("optimizer added %d instructions to a fully static graft", stats.InstrsAdded)
	}
	if err := Verify(opt); err != nil {
		t.Fatalf("verifier rejects optimizer output: %v", err)
	}
	vm, _ := NewVM(opt, Config{})
	res, err := vm.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	// heap[128+8] is zero-initialised, so the ld returns 0.
	if res != 0 {
		t.Fatalf("res = %d", res)
	}
	if got := vm.Heap()[64]; got != 7 {
		t.Fatalf("discharged store missing: heap[64]=%d", got)
	}
}

func TestOptimizerKeepsMasksForDynamicAddresses(t *testing.T) {
	// Pointer-chasing access: cannot be discharged.
	img := mustAssemble(t, `
.name dynamic
.func main
main:
    ld r2, [r10+0]   ; static: discharged
    ld r3, [r2+0]    ; dynamic: must stay masked
    ret
`)
	opt, stats, err := RewriteOptimized(img)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StaticallySafe != 1 || stats.MemOpsProtected != 1 {
		t.Fatalf("stats = %+v, want 1 discharged + 1 masked", stats)
	}
	found := false
	for _, ins := range opt.Code {
		if ins.Op == SANDBOX {
			found = true
		}
	}
	if !found {
		t.Fatal("dynamic access lost its sandbox")
	}
	if err := Verify(opt); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizerResetsAtLandingPoints(t *testing.T) {
	// The ADDI establishing the base+const fact is jumped over by a
	// branch; at the landing point the state must reset, so the access
	// keeps its mask.
	img := mustAssemble(t, `
.name landing
.func main
main:
    addi r2, r10, 64
    jz r1, hop
    movi r2, 0       ; r2 is now a kernel address on this path
hop:
    st [r2+0], r1    ; reachable with r2 unknown -> must be masked
    ret
`)
	opt, stats, err := RewriteOptimized(img)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StaticallySafe != 0 || stats.MemOpsProtected != 1 {
		t.Fatalf("stats = %+v, want the access masked", stats)
	}
	if err := Verify(opt); err != nil {
		t.Fatal(err)
	}
	// Behavioural check: with r1=0 the branch takes, r2=0, and the
	// masked store must land in the segment, not kernel memory.
	vm, _ := NewVM(opt, Config{})
	km := vm.KernelMemory()
	for i := range km {
		km[i] = 0x3C
	}
	if _, err := vm.Call("main", 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range km {
		if b != 0x3C {
			t.Fatalf("kernel memory corrupted at %d", i)
		}
	}
}

func TestOptimizerDisabledWhenBaseRegisterWritten(t *testing.T) {
	// The graft overwrites r10 somewhere; no discharge anywhere.
	img := mustAssemble(t, `
.name clobber
.func main
main:
    st [r10+8], r1
    movi r10, 0      ; clobber the base register
    ret
`)
	opt, stats, err := RewriteOptimized(img)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StaticallySafe != 0 {
		t.Fatalf("discharged %d accesses despite r10 clobber", stats.StaticallySafe)
	}
	if err := Verify(opt); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizerRejectsOutOfWindowOffsets(t *testing.T) {
	// Offset beyond MinSegSize: must stay masked even though it is
	// base-relative (a larger segment is not guaranteed).
	img := mustAssemble(t, `
.name bigoff
.func main
main:
    st [r10+8000], r1
    ret
`)
	opt, stats, err := RewriteOptimized(img)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StaticallySafe != 0 || stats.MemOpsProtected != 1 {
		t.Fatalf("stats = %+v, out-of-window access discharged", stats)
	}
	if err := Verify(opt); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizerRejectsNegativeOffsets(t *testing.T) {
	img := mustAssemble(t, `
.name neg
.func main
main:
    st [r10-8], r1
    ret
`)
	_, stats, err := RewriteOptimized(img)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StaticallySafe != 0 {
		t.Fatal("negative base-relative access discharged")
	}
}

func TestVerifierRejectsForgedDischarge(t *testing.T) {
	// A hand-crafted "safe" image with an unmasked dynamic store: the
	// verifier's own dataflow must reject it.
	img := &Image{
		Name: "forged",
		Code: []Instr{
			{Op: MOVI, Rd: 2, Imm: 5}, // r2 = 5 (a kernel address)
			{Op: ST, Rs1: 2, Rs2: 1},  // unmasked store through r2
			{Op: RET},
		},
		Funcs: map[string]int{"main": 0},
		Safe:  true,
	}
	if err := Verify(img); err == nil {
		t.Fatal("forged static discharge accepted")
	}
}

func TestVerifierRejectsForgedDischargeAcrossRegion(t *testing.T) {
	// The compartment analogue of the forged-discharge attack: the
	// store sits at base+1032, comfortably inside the flat MinSegSize
	// window the classic proof uses — but the image's own layout puts
	// that offset in the read-only region. A hand-edited image that
	// drops the check must fail the verifier's region-aware re-proof.
	layout := &Layout{
		SegSize: MinSegSize,
		Regions: []Region{
			{Name: "heap", Kind: RegionHeap, Off: 0, Size: 1024, Perm: PermRW},
			{Name: "ro", Kind: RegionRO, Off: 1024, Size: 1024, Perm: PermRead},
			{Name: "stack", Kind: RegionStack, Off: 2048, Size: 2048, Perm: PermRW},
		},
	}
	forge := func(imm int64) *Image {
		return &Image{
			Name: "forged-region",
			Code: []Instr{
				{Op: ADDI, Rd: 1, Rs1: RegHeapBase, Imm: imm},
				{Op: ST, Rs1: 1, Rs2: 2}, // unchecked store, claims discharge
				{Op: RET},
			},
			Funcs:  map[string]int{"main": 0},
			Layout: layout.Clone(),
			Safe:   true,
		}
	}
	if err := Verify(forge(1032)); err == nil {
		t.Fatal("discharged store into the read-only region accepted")
	}
	// Same shape, one byte short of the heap/ro boundary: an 8-byte
	// store at 1020 straddles into ro and must also be rejected.
	if err := Verify(forge(1020)); err == nil {
		t.Fatal("discharged store across a region boundary accepted")
	}
	// Control: the identical image aimed at the heap is a genuine
	// discharge and verifies.
	if err := Verify(forge(16)); err != nil {
		t.Fatalf("genuine in-heap discharge rejected: %v", err)
	}
}

func TestVerifierAcceptsGenuineDischarge(t *testing.T) {
	img := &Image{
		Name: "genuine",
		Code: []Instr{
			{Op: ST, Rs1: RegHeapBase, Rs2: 1, Imm: 16}, // [r10+16]: in-window
			{Op: RET},
		},
		Funcs: map[string]int{"main": 0},
		Safe:  true,
	}
	if err := Verify(img); err != nil {
		t.Fatalf("genuine static discharge rejected: %v", err)
	}
}

func TestVerifierRejectsDischargeAfterCall(t *testing.T) {
	// The callee may clobber anything: base+const facts must not
	// survive a call.
	img := &Image{
		Name: "postcall",
		Code: []Instr{
			{Op: ADDI, Rd: 2, Rs1: RegHeapBase, Imm: 8}, // r2 = base+8
			{Op: CALL, Imm: 4},                          // call helper
			{Op: ST, Rs1: 2, Rs2: 1},                    // r2 no longer trusted
			{Op: RET},
			{Op: MOVI, Rd: 2, Imm: 0}, // helper clobbers r2
			{Op: RET},
		},
		Funcs: map[string]int{"main": 0},
		Safe:  true,
	}
	if err := Verify(img); err == nil {
		t.Fatal("state survived a call in the verifier")
	}
}

// TestOptimizedReadAheadGraftZeroOverhead: the paper's control-light
// read-ahead graft only touches constant heap offsets; the optimizer
// removes its entire SFI overhead.
func TestOptimizedReadAheadGraftZeroOverhead(t *testing.T) {
	src := `
.name compute-ra
.import fs.prefetch
.func main
main:
    ld r3, [r10+0]
    ld r4, [r10+8]
    ld r1, [r10+16]
    mov r2, r3
    mov r3, r4
    callk fs.prefetch
    ret
`
	img := mustAssemble(t, src)
	naive, nStats, err := Rewrite(img)
	if err != nil {
		t.Fatal(err)
	}
	opt, oStats, err := RewriteOptimized(img)
	if err != nil {
		t.Fatal(err)
	}
	if nStats.InstrsAdded == 0 {
		t.Fatal("naive rewrite added nothing?")
	}
	if oStats.InstrsAdded != 0 || oStats.StaticallySafe != 3 {
		t.Fatalf("optimizer stats = %+v, want full discharge", oStats)
	}
	if len(opt.Code) != len(img.Code) {
		t.Fatalf("optimized code grew: %d -> %d", len(img.Code), len(opt.Code))
	}
	_ = naive
}

// Property: the optimizer preserves semantics exactly on random
// programs (which freely mix static heap-relative and stack traffic).
func TestPropertyOptimizedRewritePreservesSemantics(t *testing.T) {
	f := func(seed int64, nRaw uint8, arg int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genProgram(rng, int(nRaw%40)+5)
		img, err := Assemble(src)
		if err != nil {
			return false
		}
		opt, _, err := RewriteOptimized(img)
		if err != nil {
			return false
		}
		if err := Verify(opt); err != nil {
			t.Logf("verify: %v\n%s", err, Disassemble(opt))
			return false
		}
		uvm, _ := NewVM(img, Config{})
		ovm, _ := NewVM(opt, Config{})
		a, errA := uvm.Call("main", arg)
		b, errB := ovm.Call("main", arg)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		if a != b {
			return false
		}
		uh, oh := uvm.Heap(), ovm.Heap()
		for i := range uh {
			if uh[i] != oh[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: optimized images still cannot escape the segment, whatever
// addresses the source conjures.
func TestPropertyOptimizedNeverEscapes(t *testing.T) {
	f := func(seed int64, addrs []int64) bool {
		var b strings.Builder
		b.WriteString(".name escape\n.func main\nmain:\n")
		rng := rand.New(rand.NewSource(seed))
		for i, a := range addrs {
			if i >= 16 {
				break
			}
			switch rng.Intn(4) {
			case 0:
				b.WriteString("    movi r1, " + itoa(int(a%1_000_000)) + "\n    st [r1+0], r1\n")
			case 1:
				// base-relative with arbitrary (possibly huge) offset
				b.WriteString("    st [r10" + plus(int(a%100_000)) + "], r1\n")
			case 2:
				b.WriteString("    addi r2, r10, " + itoa(int(a%50_000)) + "\n    ld r3, [r2+0]\n")
			case 3:
				b.WriteString("    ld r4, [r10+16]\n")
			}
		}
		b.WriteString("    ret\n")
		img, err := Assemble(b.String())
		if err != nil {
			return false
		}
		opt, _, err := RewriteOptimized(img)
		if err != nil {
			return false
		}
		if err := Verify(opt); err != nil {
			return false
		}
		vm, _ := NewVM(opt, Config{})
		kmem := vm.KernelMemory()
		for i := range kmem {
			kmem[i] = 0x7E
		}
		if _, err := vm.Call("main"); err != nil {
			return false
		}
		for _, bb := range kmem {
			if bb != 0x7E {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func plus(v int) string {
	if v < 0 {
		return itoa(v)
	}
	return "+" + itoa(v)
}
