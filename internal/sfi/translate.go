package sfi

// Install-time translation of verified images to native Go closures.
//
// The interpreter in vm.go pays a fetch/decode/dispatch tax on every
// GIR instruction and walks the region table on every compartment
// check. This file removes that tax the way the Endokernel enforces
// isolation — at translation time, not per step: Translate compiles an
// image into a Program, a chain of Go closures (one per basic-block
// run of instructions) with the flat SANDBOX mask, the compartmented
// CHKR/CHKW/CHKS region+grant checks, and the call-table probe inlined
// into the closure bodies. Checks still *trap* (never clamp), with
// byte-identical error values; the interpreter remains the
// deterministic oracle and diff.go executes both engines on demand.
//
// Equivalence contract (what "byte-identical" means here):
//
//   - every instruction still bumps VM.Steps and charges its exact
//     cycle cost in program order, so the preemption hook fires at the
//     same flush boundaries, watchdogs and MaxCycles trip at the same
//     instant, and virtual-time traces are unchanged;
//   - every trap constructs the same error value (same type, same PC,
//     same rendered instruction, same detail string) the interpreter
//     would have returned;
//   - call-table probe statistics, grant-audit counters and all other
//     observable VM state evolve identically.
//
// Wall-clock speed comes from three translation-time facts the
// interpreter re-derives per step: the opcode (closures are
// specialized, no switch), the region table (per-check permission
// spans are precomputed, so the hot path is two compares instead of a
// table walk), and the rewriter's instruction patterns (a verified
// check+access sequence fuses into one closure with the bounds check
// inlined against the access it certifies).
//
// Fusion soundness: a fused closure executes the exact sequential
// semantics of its instructions, so it is an equivalence-preserving
// superinstruction for ANY image. The only requirement is that control
// flow cannot enter the middle of the sequence, which the translator
// proves structurally with landingPoints — the same analysis the
// verifier and the static-discharge optimizer trust. Interior PCs keep
// their singleton closures, so even a hand-written image that defeats
// the pattern matcher merely runs unfused, never incorrectly.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// errDone signals a clean return from the entry frame (RET with an
// empty shadow stack, or HALT). It never escapes Program.run.
var errDone = errors.New("sfi: program done")

// stepFn executes one translated step (a single instruction or a fused
// run) against a VM and returns the next pc.
type stepFn func(vm *VM) (int, error)

// span is one permitted [lo,hi) window of the segment for a given
// check class. Spans are one-per-region and never merged: a check must
// be wholly contained in a single region (Layout.Find semantics), so
// an access straddling two adjacent permitted regions still falls back
// to the slow path and traps exactly like the interpreter.
type span struct{ lo, hi int64 }

// Program is a translated image: position-indexed closures plus the
// precomputed check tables they test against. A Program captures only
// image constants — all mutable state lives in the VM passed at run
// time — so one Program is shared by every VM of the same image, which
// is what makes the registry's translation cache sound (and why the
// cache key is a content hash, not an image name: see TranslationKey).
type Program struct {
	key   string
	safe  bool
	steps []stepFn

	// Per-check-class permission spans, segment-relative (empty for
	// flat images).
	readSpans  []span
	writeSpans []span
	stackSpans []span
	segSize    int64

	fused int // fused superinstructions, for tests and the sweep
}

// Key returns the program's content-hash identity (TranslationKey of
// the image it was translated from).
func (p *Program) Key() string { return p.key }

// Fusions returns how many multi-instruction runs were fused into
// single closures.
func (p *Program) Fusions() int { return p.fused }

// TranslationKey is the cache identity of an image for translation
// purposes: a SHA-256 over the canonical encoding. Two images agree on
// the key iff they agree on every byte that affects execution (code,
// data, symbols, entry points, call targets, layout), so a cached
// Program can never be replayed against a different image — the
// closure-cache-poisoning attack the red-team corpus runs.
func TranslationKey(img *Image) string {
	sum := sha256.Sum256(img.Encode())
	return hex.EncodeToString(sum[:])
}

// Translate compiles a verified image into a Program. The image must
// pass Verify — translation is the loader's last stage, after
// signature and safety checks, and refuses anything the verifier
// would: an unverifiable image has no certified check placements to
// fuse against.
func Translate(img *Image) (*Program, error) {
	if img == nil || len(img.Code) == 0 {
		return nil, errors.New("sfi: translate: empty image")
	}
	if err := Verify(img); err != nil {
		return nil, fmt.Errorf("sfi: translate: %w", err)
	}
	p := &Program{
		key:   TranslationKey(img),
		safe:  img.Safe,
		steps: make([]stepFn, len(img.Code)),
	}
	if l := img.Layout; l != nil {
		p.segSize = l.SegSize
		for _, r := range l.Regions {
			s := span{r.Off, r.Off + r.Size}
			if r.Perm&PermRead != 0 {
				p.readSpans = append(p.readSpans, s)
			}
			if r.Perm&PermWrite != 0 {
				p.writeSpans = append(p.writeSpans, s)
			}
			if r.Kind == RegionStack && r.Perm&PermWrite != 0 {
				p.stackSpans = append(p.stackSpans, s)
			}
		}
	}
	// Singletons first: every pc gets a faithful one-instruction
	// closure, so interior positions of fused runs stay executable even
	// though nothing can reach them.
	for pc, ins := range img.Code {
		p.steps[pc] = p.singleStep(pc, ins)
	}
	// Then overlay fused superinstructions at run heads. Greedy
	// left-to-right, skipping consumed instructions so runs never
	// overlap.
	landing := landingPoints(img)
	for pc := 0; pc < len(img.Code); {
		if f, n := p.fuse(img, landing, pc); f != nil {
			p.steps[pc] = f
			p.fused++
			pc += n
			continue
		}
		pc++
	}
	return p, nil
}

// run drives a translated program from pc. The loop mirrors the
// interpreter's outer loop exactly: the same out-of-range trap, then
// the step body (which charges, checks fuel and executes like the
// interpreter's switch arm).
func (p *Program) run(vm *VM, pc int) error {
	steps := p.steps
	for {
		if pc < 0 || pc >= len(steps) {
			if vm.img.Safe {
				return &Violation{PC: pc, Ins: "?", Detail: "control flow left the code segment"}
			}
			return &CrashError{PC: pc, Ins: "?", Detail: "control flow left the code segment"}
		}
		next, err := steps[pc](vm)
		if err != nil {
			if err == errDone {
				return nil
			}
			return err
		}
		pc = next
	}
}

// spansFor returns the permission spans a check opcode tests against.
func (p *Program) spansFor(op Op) []span {
	switch op {
	case CHKR:
		return p.readSpans
	case CHKW:
		return p.writeSpans
	case CHKS:
		return p.stackSpans
	}
	return nil
}

// inSpans is the fused fast path of a region check: [off,off+width)
// wholly inside one permitted region. Anything else — out of segment,
// straddling, grant-only, denied — falls back to VM.regionCheck, which
// resolves grants and constructs the interpreter's exact trap.
func inSpans(spans []span, off, width, segSize int64) bool {
	if off < 0 || off+width > segSize {
		return false
	}
	for _, s := range spans {
		if off >= s.lo && off+width <= s.hi {
			return true
		}
	}
	return false
}

// accessWidth returns the byte width of a memory-access opcode.
func accessWidth(op Op) int64 {
	if op == LDB || op == STB {
		return 1
	}
	return 8
}

// fastLoad/fastStore perform an access already proven in-arena.
// Little-endian, exactly the interpreter's byte loops.
func fastLoad(vm *VM, addr int64, width int64) int64 {
	if width == 1 {
		return int64(vm.arena[addr])
	}
	return int64(binary.LittleEndian.Uint64(vm.arena[addr:]))
}

func fastStore(vm *VM, addr int64, width int64, v int64) {
	if width == 1 {
		vm.arena[addr] = byte(v)
		return
	}
	binary.LittleEndian.PutUint64(vm.arena[addr:], uint64(v))
}

// fuse recognises the rewriter's certified instruction patterns at pc
// and returns a superinstruction closure plus the number of
// instructions consumed, or (nil, 0). Every pattern requires that no
// landing point falls after the head — control flow provably cannot
// enter mid-run.
func (p *Program) fuse(img *Image, landing map[int]bool, pc int) (stepFn, int) {
	if !img.Safe {
		// Unsafe images carry no certified checks; they run on
		// singletons (decode removal only).
		return nil, 0
	}
	code := img.Code
	// Two-instruction pattern: CHKCALL rs ; CALLR rs.
	if pc+1 < len(code) && !landing[pc+1] {
		a, b := code[pc], code[pc+1]
		if a.Op == CHKCALL && b.Op == CALLR && a.Rs1 == b.Rs1 {
			if f := p.fuseCheckedCall(pc, a, b); f != nil {
				return f, 2
			}
		}
	}
	if pc+2 >= len(code) || landing[pc+1] || landing[pc+2] {
		return nil, 0
	}
	a, b, c := code[pc], code[pc+1], code[pc+2]
	switch {
	// ADDI rd,rs,imm ; CHKR/CHKW/CHKS rd,w ; access [rd+0]
	// (covers plain accesses and the PUSH expansion, where rd is SP).
	case a.Op == ADDI && (b.Op == CHKR || b.Op == CHKW || b.Op == CHKS) &&
		b.Rd == a.Rd && c.accessesMem() && c.Op != PUSH && c.Op != POP &&
		c.Rs1 == a.Rd && c.Imm == 0 && b.Imm == accessWidth(c.Op) &&
		img.Layout != nil:
		return p.fuseRegionAccess(pc, a, b, c), 3
	// CHKR sp,8 ; LD rd,[sp+0] ; ADDI sp,sp,8 (the POP expansion).
	case a.Op == CHKR && a.Rd == RegSP && a.Imm == 8 &&
		b.Op == LD && b.Rs1 == RegSP && b.Imm == 0 &&
		c.Op == ADDI && c.Rd == RegSP && c.Rs1 == RegSP && c.Imm == 8 &&
		img.Layout != nil:
		return p.fusePopExpansion(pc, a, b), 3
	// ADDI rd,rs,imm ; SANDBOX rd ; access [rd+0] (the flat pipeline).
	case a.Op == ADDI && b.Op == SANDBOX && b.Rd == a.Rd &&
		c.accessesMem() && c.Op != PUSH && c.Op != POP &&
		c.Rs1 == a.Rd && c.Imm == 0 && img.Layout == nil:
		return p.fuseSandboxAccess(pc, a, c), 3
	}
	return nil, 0
}

// fuseRegionAccess compiles the compartment pipeline's certified
// triple: address formation, region check, access. The fast path
// replaces the interpreter's region-table walk with a span compare;
// every miss (out of segment, straddle, grant-only share, permission
// denial) takes the interpreter's own regionCheck so traps and grant
// audits stay identical.
func (p *Program) fuseRegionAccess(pc int, a, b, c Instr) stepFn {
	aOp, aRd, aRs1, aImm := a.Op, a.Rd, a.Rs1, a.Imm
	bOp, chkPC, chkIns := b.Op, pc+1, b
	cOp, cRd, cRs2 := c.Op, c.Rd, c.Rs2
	width := accessWidth(cOp)
	spans := p.spansFor(bOp)
	segSize := p.segSize
	isStore := cOp == ST || cOp == STB
	next := pc + 3
	return func(vm *VM) (int, error) {
		if err := vm.tick(vm.costTab[aOp]); err != nil {
			return 0, err
		}
		addr := vm.regs[aRs1] + aImm
		vm.regs[aRd] = addr
		if err := vm.tick(vm.costTab[bOp]); err != nil {
			return 0, err
		}
		if !inSpans(spans, addr-int64(vm.segBase), width, segSize) {
			if err := vm.regionCheck(chkPC, chkIns); err != nil {
				return 0, err
			}
		}
		if err := vm.tick(vm.costTab[cOp]); err != nil {
			return 0, err
		}
		if isStore {
			fastStore(vm, addr, width, vm.regs[cRs2])
		} else {
			vm.regs[cRd] = fastLoad(vm, addr, width)
		}
		return next, nil
	}
}

// fusePopExpansion compiles the compartment POP lowering: stack-read
// check, load through SP, SP bump.
func (p *Program) fusePopExpansion(pc int, a, b Instr) stepFn {
	chkPC, chkIns := pc, a
	bRd := b.Rd
	spans := p.readSpans
	segSize := p.segSize
	next := pc + 3
	return func(vm *VM) (int, error) {
		if err := vm.tick(vm.costTab[CHKR]); err != nil {
			return 0, err
		}
		addr := vm.regs[RegSP]
		if !inSpans(spans, addr-int64(vm.segBase), 8, segSize) {
			if err := vm.regionCheck(chkPC, chkIns); err != nil {
				return 0, err
			}
		}
		if err := vm.tick(vm.costTab[LD]); err != nil {
			return 0, err
		}
		vm.regs[bRd] = fastLoad(vm, addr, 8)
		if err := vm.tick(vm.costTab[ADDI]); err != nil {
			return 0, err
		}
		vm.regs[RegSP] += 8
		return next, nil
	}
}

// fuseSandboxAccess compiles the flat pipeline's certified triple:
// address formation, sandbox mask, access. The mask confines the
// address to the segment; only the final bytes of the segment can
// still overrun the arena, and that tail case takes the interpreter's
// load/store for the identical memErr.
func (p *Program) fuseSandboxAccess(pc int, a, c Instr) stepFn {
	aRd, aRs1, aImm := a.Rd, a.Rs1, a.Imm
	cOp, cRd, cRs2 := c.Op, c.Rd, c.Rs2
	accPC, accIns := pc+2, c
	width := accessWidth(cOp)
	isStore := cOp == ST || cOp == STB
	next := pc + 3
	return func(vm *VM) (int, error) {
		if err := vm.tick(vm.costTab[ADDI]); err != nil {
			return 0, err
		}
		vm.regs[aRd] = vm.regs[aRs1] + aImm
		if err := vm.tick(vm.costTab[SANDBOX]); err != nil {
			return 0, err
		}
		addr := int64(vm.segBase | (uint64(vm.regs[aRd]) & (vm.segSize - 1)))
		vm.regs[aRd] = addr
		if err := vm.tick(vm.costTab[cOp]); err != nil {
			return 0, err
		}
		if addr+width > int64(len(vm.arena)) {
			// Segment-tail overrun: the interpreter's path reports it.
			if isStore {
				return 0, vm.store(accPC, accIns, addr, int(width), vm.regs[cRs2])
			}
			v, err := vm.load(accPC, accIns, addr, int(width))
			if err != nil {
				return 0, err
			}
			vm.regs[cRd] = v
			return next, nil
		}
		if isStore {
			fastStore(vm, addr, width, vm.regs[cRs2])
		} else {
			vm.regs[cRd] = fastLoad(vm, addr, width)
		}
		return next, nil
	}
}

// fuseCheckedCall compiles CHKCALL+CALLR. The table probe still runs
// through CallTable.Contains so probe statistics (the paper's 10–15
// cycle cost model evidence) accumulate identically.
func (p *Program) fuseCheckedCall(pc int, a, b Instr) stepFn {
	rs1 := a.Rs1
	chkStr := a.String()
	callStr := b.String()
	callPC := pc + 1
	ret := pc + 2
	return func(vm *VM) (int, error) {
		if err := vm.tick(vm.costTab[CHKCALL]); err != nil {
			return 0, err
		}
		target := vm.regs[rs1]
		if !vm.table.Contains(target) {
			return 0, &Violation{PC: pc, Ins: chkStr, Detail: fmt.Sprintf("indirect call to unregistered target %d", target)}
		}
		if err := vm.tick(vm.costTab[CALLR]); err != nil {
			return 0, err
		}
		if len(vm.shadow) >= maxShadowDepth {
			return 0, &Violation{PC: callPC, Ins: callStr, Detail: "call stack overflow"}
		}
		vm.shadow = append(vm.shadow, ret)
		return int(vm.regs[rs1]), nil
	}
}

// singleStep builds the faithful one-instruction closure for pc: the
// interpreter's switch arm, specialized at translation time (opcode,
// operands and the rendered instruction string are baked in).
func (p *Program) singleStep(pc int, ins Instr) stepFn {
	op := ins.Op
	rd, rs1, rs2, imm := ins.Rd, ins.Rs1, ins.Rs2, ins.Imm
	next := pc + 1
	switch op {
	case NOP:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[NOP]); err != nil {
				return 0, err
			}
			return next, nil
		}
	case MOVI, LEA:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[op]); err != nil {
				return 0, err
			}
			vm.regs[rd] = imm
			return next, nil
		}
	case MOV:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[MOV]); err != nil {
				return 0, err
			}
			vm.regs[rd] = vm.regs[rs1]
			return next, nil
		}
	case ADD:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[ADD]); err != nil {
				return 0, err
			}
			vm.regs[rd] = vm.regs[rs1] + vm.regs[rs2]
			return next, nil
		}
	case SUB:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[SUB]); err != nil {
				return 0, err
			}
			vm.regs[rd] = vm.regs[rs1] - vm.regs[rs2]
			return next, nil
		}
	case MUL:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[MUL]); err != nil {
				return 0, err
			}
			vm.regs[rd] = vm.regs[rs1] * vm.regs[rs2]
			return next, nil
		}
	case DIV, MOD:
		insStr := ins.String()
		isDiv := op == DIV
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[op]); err != nil {
				return 0, err
			}
			d := vm.regs[rs2]
			if d == 0 {
				return 0, &Violation{PC: pc, Ins: insStr, Detail: "division by zero"}
			}
			if isDiv {
				vm.regs[rd] = vm.regs[rs1] / d
			} else {
				vm.regs[rd] = vm.regs[rs1] % d
			}
			return next, nil
		}
	case AND:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[AND]); err != nil {
				return 0, err
			}
			vm.regs[rd] = vm.regs[rs1] & vm.regs[rs2]
			return next, nil
		}
	case OR:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[OR]); err != nil {
				return 0, err
			}
			vm.regs[rd] = vm.regs[rs1] | vm.regs[rs2]
			return next, nil
		}
	case XOR:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[XOR]); err != nil {
				return 0, err
			}
			vm.regs[rd] = vm.regs[rs1] ^ vm.regs[rs2]
			return next, nil
		}
	case SHL:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[SHL]); err != nil {
				return 0, err
			}
			vm.regs[rd] = vm.regs[rs1] << (uint64(vm.regs[rs2]) & 63)
			return next, nil
		}
	case SHR:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[SHR]); err != nil {
				return 0, err
			}
			vm.regs[rd] = int64(uint64(vm.regs[rs1]) >> (uint64(vm.regs[rs2]) & 63))
			return next, nil
		}
	case ADDI:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[ADDI]); err != nil {
				return 0, err
			}
			vm.regs[rd] = vm.regs[rs1] + imm
			return next, nil
		}
	case ANDI:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[ANDI]); err != nil {
				return 0, err
			}
			vm.regs[rd] = vm.regs[rs1] & imm
			return next, nil
		}
	case CMPEQ:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[CMPEQ]); err != nil {
				return 0, err
			}
			vm.regs[rd] = b2i(vm.regs[rs1] == vm.regs[rs2])
			return next, nil
		}
	case CMPLT:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[CMPLT]); err != nil {
				return 0, err
			}
			vm.regs[rd] = b2i(vm.regs[rs1] < vm.regs[rs2])
			return next, nil
		}
	case CMPLE:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[CMPLE]); err != nil {
				return 0, err
			}
			vm.regs[rd] = b2i(vm.regs[rs1] <= vm.regs[rs2])
			return next, nil
		}
	case JMP:
		target := int(imm)
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[JMP]); err != nil {
				return 0, err
			}
			return target, nil
		}
	case JZ:
		target := int(imm)
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[JZ]); err != nil {
				return 0, err
			}
			if vm.regs[rs1] == 0 {
				return target, nil
			}
			return next, nil
		}
	case JNZ:
		target := int(imm)
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[JNZ]); err != nil {
				return 0, err
			}
			if vm.regs[rs1] != 0 {
				return target, nil
			}
			return next, nil
		}
	case LD, LDB:
		width := accessWidth(op)
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[op]); err != nil {
				return 0, err
			}
			addr := vm.regs[rs1] + imm
			if addr >= 0 && addr+width <= int64(len(vm.arena)) {
				vm.regs[rd] = fastLoad(vm, addr, width)
				return next, nil
			}
			v, err := vm.load(pc, ins, addr, int(width))
			if err != nil {
				return 0, err
			}
			vm.regs[rd] = v
			return next, nil
		}
	case ST, STB:
		width := accessWidth(op)
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[op]); err != nil {
				return 0, err
			}
			addr := vm.regs[rs1] + imm
			if addr >= 0 && addr+width <= int64(len(vm.arena)) {
				fastStore(vm, addr, width, vm.regs[rs2])
				return next, nil
			}
			return 0, vm.store(pc, ins, addr, int(width), vm.regs[rs2])
		}
	case PUSH:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[PUSH]); err != nil {
				return 0, err
			}
			vm.regs[RegSP] -= 8
			addr := vm.regs[RegSP]
			if addr >= 0 && addr+8 <= int64(len(vm.arena)) {
				fastStore(vm, addr, 8, vm.regs[rs1])
				return next, nil
			}
			return 0, vm.store(pc, ins, addr, 8, vm.regs[rs1])
		}
	case POP:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[POP]); err != nil {
				return 0, err
			}
			addr := vm.regs[RegSP]
			if addr >= 0 && addr+8 <= int64(len(vm.arena)) {
				vm.regs[rd] = fastLoad(vm, addr, 8)
			} else {
				v, err := vm.load(pc, ins, addr, 8)
				if err != nil {
					return 0, err
				}
				vm.regs[rd] = v
			}
			vm.regs[RegSP] += 8
			return next, nil
		}
	case CALL:
		insStr := ins.String()
		target := int(imm)
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[CALL]); err != nil {
				return 0, err
			}
			if len(vm.shadow) >= maxShadowDepth {
				return 0, &Violation{PC: pc, Ins: insStr, Detail: "call stack overflow"}
			}
			vm.shadow = append(vm.shadow, next)
			return target, nil
		}
	case CALLR:
		insStr := ins.String()
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[CALLR]); err != nil {
				return 0, err
			}
			if len(vm.shadow) >= maxShadowDepth {
				return 0, &Violation{PC: pc, Ins: insStr, Detail: "call stack overflow"}
			}
			vm.shadow = append(vm.shadow, next)
			return int(vm.regs[rs1]), nil
		}
	case CALLK:
		insStr := ins.String()
		idx := int(imm)
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[CALLK]); err != nil {
				return 0, err
			}
			if idx < 0 || idx >= len(vm.kernel) {
				return 0, &Violation{PC: pc, Ins: insStr, Detail: "kernel symbol index out of range"}
			}
			vm.flush() // kernel time is accounted separately by the callee
			var args [5]int64
			copy(args[:], vm.regs[1:6])
			res, err := vm.kernel[idx](vm, args)
			if err != nil {
				return 0, fmt.Errorf("sfi: kernel call %s failed: %w", vm.img.Symbols[idx], err)
			}
			vm.regs[0] = res
			return next, nil
		}
	case RET:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[RET]); err != nil {
				return 0, err
			}
			if len(vm.shadow) == 0 {
				return 0, errDone
			}
			ret := vm.shadow[len(vm.shadow)-1]
			vm.shadow = vm.shadow[:len(vm.shadow)-1]
			return ret, nil
		}
	case HALT:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[HALT]); err != nil {
				return 0, err
			}
			return 0, errDone
		}
	case SANDBOX:
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[SANDBOX]); err != nil {
				return 0, err
			}
			vm.regs[rd] = int64(vm.segBase | (uint64(vm.regs[rd]) & (vm.segSize - 1)))
			return next, nil
		}
	case CHKR, CHKW, CHKS:
		spans := p.spansFor(op)
		width := imm
		segSize := p.segSize
		fastable := width == 1 || width == 8
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[op]); err != nil {
				return 0, err
			}
			if fastable && inSpans(spans, vm.regs[rd]-int64(vm.segBase), width, segSize) {
				return next, nil
			}
			if err := vm.regionCheck(pc, ins); err != nil {
				return 0, err
			}
			return next, nil
		}
	case CHKCALL:
		insStr := ins.String()
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[CHKCALL]); err != nil {
				return 0, err
			}
			if !vm.table.Contains(vm.regs[rs1]) {
				return 0, &Violation{PC: pc, Ins: insStr, Detail: fmt.Sprintf("indirect call to unregistered target %d", vm.regs[rs1])}
			}
			return next, nil
		}
	default:
		insStr := ins.String()
		return func(vm *VM) (int, error) {
			if err := vm.tick(vm.costTab[NOP]); err != nil {
				return 0, err
			}
			return 0, &Violation{PC: pc, Ins: insStr, Detail: "illegal opcode"}
		}
	}
}
