package sfi

import (
	"errors"
	"strings"
	"testing"
)

// translateWorkload exercises every instruction family: ALU, div/mod,
// loops, 64-bit and byte memory traffic, push/pop, direct and indirect
// calls, LEA, and a kernel call.
const translateWorkload = `
.name twork
.import test.mix
.func main
.target helper
main:
    movi r1, 200
    movi r0, 0
loop:
    jz r1, done
    add r0, r0, r1
    movi r2, 3
    div r3, r0, r2
    mod r4, r0, r2
    xor r3, r3, r4
    addi r5, r10, 64
    st [r5+0], r3
    ld r3, [r5+0]
    stb [r5+8], r1
    ldb r4, [r5+8]
    push r3
    pop r3
    addi r1, r1, -1
    jmp loop
done:
    lea r1, helper
    callr r1
    movi r1, 5
    movi r2, 6
    callk test.mix
    ret
helper:
    addi r0, r0, 7
    ret
`

func mixKernel() map[string]KernelFunc {
	return map[string]KernelFunc{
		"test.mix": func(vm *VM, args [5]int64) (int64, error) {
			return args[0]*1000 + args[1] + vm.Reg(0)%97, nil
		},
	}
}

// buildAll returns the workload under every toolchain pipeline.
func buildAll(t testing.TB, src string) map[string]*Image {
	t.Helper()
	signer := NewSigner([]byte("translate-test"))
	out := map[string]*Image{}
	unsafe, err := BuildUnsafe(src)
	if err != nil {
		t.Fatalf("BuildUnsafe: %v", err)
	}
	out["unsafe"] = unsafe
	for name, build := range map[string]func(string, *Signer) (*Image, RewriteStats, error){
		"safe":    BuildSafe,
		"safeopt": BuildSafeOptimized,
		"comp":    BuildCompartmented,
		"compopt": BuildCompartmentedOptimized,
	} {
		img, _, err := build(src, signer)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = img
	}
	return out
}

func TestTranslateParityAllPipelines(t *testing.T) {
	for name, img := range buildAll(t, translateWorkload) {
		cfg := Config{Kernel: mixKernel(), HookEvery: 64, Hook: func(int64) {}}
		if err := ExecDiff(img, cfg, nil, "main"); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTranslatedEngineIsActuallyTranslated(t *testing.T) {
	img, _, err := BuildCompartmented(translateWorkload, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(img, Config{Kernel: mixKernel(), Translate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !vm.Translated() {
		t.Fatal("Translate:true produced an interpreting VM")
	}
	if vm.TranslatedProgram().Key() != TranslationKey(img) {
		t.Fatal("program key does not match its image")
	}
	oracle, err := NewVM(img, Config{Kernel: mixKernel()})
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Translated() {
		t.Fatal("default VM should interpret")
	}
	a, errA := vm.Call("main")
	b, errB := oracle.Call("main")
	if errA != nil || errB != nil {
		t.Fatalf("calls failed: %v / %v", errA, errB)
	}
	if a != b {
		t.Fatalf("results differ: translated=%d interpreted=%d", a, b)
	}
}

func TestTranslateFusesCertifiedPatterns(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(string, *Signer) (*Image, RewriteStats, error)
	}{
		{"safe", BuildSafe},
		{"comp", BuildCompartmented},
	} {
		img, _, err := tc.build(translateWorkload, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		prog, err := Translate(img)
		if err != nil {
			t.Fatalf("%s: Translate: %v", tc.name, err)
		}
		if prog.Fusions() == 0 {
			t.Errorf("%s: no fused superinstructions in a memory-heavy workload", tc.name)
		}
	}
}

func TestTranslateRequiresVerifiableImage(t *testing.T) {
	img, _, err := BuildSafe(translateWorkload, nil)
	if err != nil {
		t.Fatal(err)
	}
	evil := img.Clone()
	// Strip the chkcall guarding the indirect call: the verifier must
	// refuse, so the translator must too.
	for i, ins := range evil.Code {
		if ins.Op == CHKCALL {
			evil.Code[i] = Instr{Op: NOP}
			break
		}
	}
	if _, err := Translate(evil); err == nil {
		t.Fatal("translator accepted an unverifiable image")
	}
	if _, err := Translate(nil); err == nil {
		t.Fatal("translator accepted a nil image")
	}
}

func TestProgramKeyMismatchRefused(t *testing.T) {
	imgA, _, err := BuildCompartmented(translateWorkload, nil)
	if err != nil {
		t.Fatal(err)
	}
	imgB, _, err := BuildCompartmented(`
.name other
.func main
main:
    movi r0, 1
    ret
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	progA, err := Translate(imgA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVM(imgB, Config{Kernel: mixKernel(), Program: progA}); err == nil {
		t.Fatal("VM accepted a program translated from a different image")
	}
	// The right pairing still loads.
	if _, err := NewVM(imgA, Config{Kernel: mixKernel(), Program: progA}); err != nil {
		t.Fatalf("matching program refused: %v", err)
	}
}

func TestTranslateTrapParity(t *testing.T) {
	signer := NewSigner([]byte("translate-test"))
	type trapCase struct {
		name  string
		img   *Image
		cfg   Config
		prep  func(*VM) error
		entry string
		check string // substring the (identical) trap must carry
	}
	mk := func(t *testing.T, build func(string, *Signer) (*Image, RewriteStats, error), src string) *Image {
		t.Helper()
		img, _, err := build(src, signer)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	mkUnsafe := func(t *testing.T, src string) *Image {
		t.Helper()
		img, err := BuildUnsafe(src)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	cases := []trapCase{
		{
			name:  "div-by-zero",
			img:   mkUnsafe(t, ".name z\n.func main\nmain:\n movi r1, 1\n movi r2, 0\n div r0, r1, r2\n ret"),
			entry: "main", check: "division by zero",
		},
		{
			name:  "cycle-limit",
			img:   mkUnsafe(t, ".name spin\n.func main\nmain:\n jmp main"),
			cfg:   Config{MaxCycles: 777},
			entry: "main", check: "cycle limit",
		},
		{
			name:  "unregistered-indirect",
			img:   mkUnsafe(t, ".name bad\n.func main\nmain:\n lea r1, hidden\n chkcall r1\n callr r1\n ret\nhidden:\n movi r0, 1\n ret"),
			entry: "main", check: "unregistered target",
		},
		{
			name:  "shadow-overflow",
			img:   mkUnsafe(t, ".name rec\n.func main\nmain:\n call main\n ret"),
			entry: "main", check: "call stack overflow",
		},
		{
			name:  "ro-region-store",
			img:   mk(t, BuildCompartmented, ".name ro\n.func main\nmain:\n movi r2, 1\n addi r3, r10, 49152\n st [r3+0], r2\n ret"),
			entry: "main", check: "denied by region",
		},
		{
			name:  "share-without-grant",
			img:   mk(t, BuildCompartmented, ".name sh\n.func main\nmain:\n movi r2, 1\n addi r3, r10, 40960\n st [r3+0], r2\n ret"),
			entry: "main", check: "denied by region",
		},
		{
			name:  "grant-replay-after-revoke",
			img:   mk(t, BuildCompartmented, ".name gr\n.func main\nmain:\n movi r2, 9\n addi r3, r10, 40960\n st [r3+0], r2\n ret"),
			entry: "main", check: "denied by region",
			prep: func(vm *VM) error {
				if _, err := vm.Grant(40960, 64, PermRW); err != nil {
					return err
				}
				if _, err := vm.Call("main"); err != nil {
					return err
				}
				vm.RevokeGrants()
				return nil // the measured call replays against a dead grant
			},
		},
		{
			name:  "pop-underflow",
			img:   mk(t, BuildCompartmented, ".name pu\n.func main\nmain:\n pop r1\n ret"),
			entry: "main", check: "outside the compartment segment",
		},
		{
			name:  "kernel-call-error",
			img:   mkUnsafe(t, ".name ke\n.import test.fail\n.func main\nmain:\n callk test.fail\n ret"),
			cfg:   Config{Kernel: map[string]KernelFunc{"test.fail": func(*VM, [5]int64) (int64, error) { return 0, errors.New("permission denied") }}},
			entry: "main", check: "kernel call test.fail failed",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ExecDiff(tc.img, tc.cfg, tc.prep, tc.entry); err != nil {
				t.Fatalf("engines diverge: %v", err)
			}
			// Confirm the shared trap is the intended one.
			cfg := tc.cfg
			cfg.Translate = true
			vm, err := NewVM(tc.img, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tc.prep != nil {
				if err := tc.prep(vm); err != nil {
					t.Fatal(err)
				}
			}
			_, callErr := vm.Call(tc.entry)
			if callErr == nil || !strings.Contains(callErr.Error(), tc.check) {
				t.Fatalf("translated trap = %v, want substring %q", callErr, tc.check)
			}
		})
	}
}

func TestTranslateGrantAuditParity(t *testing.T) {
	img, _, err := BuildCompartmented(`
.name ga
.func main
main:
    ; 3 writes + 2 reads through the grant window at share+0
    movi r2, 5
    addi r3, r10, 40960
    st [r3+0], r2
    st [r3+8], r2
    stb [r3+16], r2
    ld r4, [r3+0]
    ldb r5, [r3+16]
    mov r0, r4
    ret
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	prep := func(vm *VM) error {
		_, err := vm.Grant(40960, 64, PermRW)
		return err
	}
	if err := ExecDiff(img, Config{}, prep, "main"); err != nil {
		t.Fatalf("engines diverge: %v", err)
	}
	for _, translate := range []bool{false, true} {
		vm, err := NewVM(img, Config{Translate: translate})
		if err != nil {
			t.Fatal(err)
		}
		if err := prep(vm); err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Call("main"); err != nil {
			t.Fatal(err)
		}
		audits := vm.GrantAudits()
		if len(audits) != 1 || audits[0].Region != "share" {
			t.Fatalf("translate=%v: audits = %+v, want one share entry", translate, audits)
		}
		if audits[0].Reads != 2 || audits[0].Writes != 3 {
			t.Fatalf("translate=%v: share audit = %dr/%dw, want 2r/3w", translate, audits[0].Reads, audits[0].Writes)
		}
	}
}

// TestTranslateHookFlushSchedule pins the strongest timing property:
// the preemption hook observes the exact same flush sequence on both
// engines, so virtual-time scheduling cannot tell them apart.
func TestTranslateHookFlushSchedule(t *testing.T) {
	img, _, err := BuildCompartmentedOptimized(translateWorkload, nil)
	if err != nil {
		t.Fatal(err)
	}
	flushes := func(translate bool) []int64 {
		var got []int64
		vm, err := NewVM(img, Config{
			Kernel:    mixKernel(),
			HookEvery: 50,
			Hook:      func(c int64) { got = append(got, c) },
			Translate: translate,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Call("main"); err != nil {
			t.Fatal(err)
		}
		return got
	}
	oracle, trans := flushes(false), flushes(true)
	if len(oracle) != len(trans) {
		t.Fatalf("flush counts differ: %d vs %d", len(oracle), len(trans))
	}
	for i := range oracle {
		if oracle[i] != trans[i] {
			t.Fatalf("flush #%d differs: %d vs %d", i, oracle[i], trans[i])
		}
	}
	if len(oracle) < 10 {
		t.Fatalf("only %d flushes; workload too small to trust", len(oracle))
	}
}
