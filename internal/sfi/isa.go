// Package sfi is the software-fault-isolation substrate: the analog of
// the paper's MiSFIT tool (§3.3) and the runtime that executes protected
// graft code.
//
// The paper's grafts are x86 object code rewritten by MiSFIT so that
// every load and store is forced into the graft's memory region (2–5
// cycles per access) and every indirect call is checked against a hash
// table of valid targets (10–15 cycles per call), then digitally signed
// so the kernel loader accepts only processed code. Reproducing that
// requires running rewritten machine code in supervisor mode, which a Go
// process cannot do; instead this package defines GIR — a small
// register-machine instruction set — with the same toolchain shape:
//
//   - an assembler (asm.go) and disassembler (disasm.go),
//   - a rewriter (rewrite.go) that inserts explicit SANDBOX masking
//     instructions before every memory access and CHKCALL probes before
//     every indirect call, remapping branch targets,
//   - a structural verifier (verify.go),
//   - an HMAC-SHA256 signer over the canonical image encoding
//     (image.go), playing the role of MiSFIT's code signature,
//   - an interpreter (vm.go) with a per-instruction cycle cost model, a
//     preemption hook, and a two-mode memory system: unsafe images can
//     scribble over the surrounding simulated kernel memory (the
//     disaster the paper is about), while rewritten images physically
//     cannot escape their segment.
//
// The SFI cost structure therefore matches the paper's in kind: overhead
// proportional to load/store density, worst for copy/encrypt-style
// stream grafts, negligible for control-dominated grafts.
package sfi

import "fmt"

// Op is a GIR opcode.
type Op uint8

// GIR instruction opcodes.
const (
	NOP   Op = iota
	MOVI     // rd <- imm
	MOV      // rd <- rs1
	ADD      // rd <- rs1 + rs2
	SUB      // rd <- rs1 - rs2
	MUL      // rd <- rs1 * rs2
	DIV      // rd <- rs1 / rs2 (traps on zero)
	MOD      // rd <- rs1 % rs2 (traps on zero)
	AND      // rd <- rs1 & rs2
	OR       // rd <- rs1 | rs2
	XOR      // rd <- rs1 ^ rs2
	SHL      // rd <- rs1 << (rs2 & 63)
	SHR      // rd <- int64(uint64(rs1) >> (rs2 & 63))
	ADDI     // rd <- rs1 + imm
	ANDI     // rd <- rs1 & imm
	CMPEQ    // rd <- rs1 == rs2 ? 1 : 0
	CMPLT    // rd <- rs1 < rs2 ? 1 : 0 (signed)
	CMPLE    // rd <- rs1 <= rs2 ? 1 : 0 (signed)
	JMP      // pc <- imm
	JZ       // if rs1 == 0: pc <- imm
	JNZ      // if rs1 != 0: pc <- imm
	LD       // rd <- mem64[rs1 + imm]
	LDB      // rd <- mem8[rs1 + imm] (zero-extended)
	ST       // mem64[rs1 + imm] <- rs2
	STB      // mem8[rs1 + imm] <- low byte of rs2
	PUSH     // sp -= 8; mem64[sp] <- rs1
	POP      // rd <- mem64[sp]; sp += 8
	CALL     // shadow-push pc+1; pc <- imm (graft-internal)
	CALLR    // shadow-push pc+1; pc <- rs1 (indirect, SFI-checked)
	CALLK    // r0 <- kernel[imm](r1..r5) (graft-callable function)
	RET      // pc <- shadow-pop; empty stack returns from entry
	HALT     // stop; result in r0
	LEA      // rd <- imm, where imm is a code address (remapped by the rewriter)
	// SFI pseudo-instructions, inserted by the rewriter. Hand-written
	// code may also use them, but only the rewriter's placement is
	// certified by the verifier.
	SANDBOX // rd <- segBase | (rd & (segSize-1))
	CHKCALL // trap unless rs1 is a registered indirect-call target
	// Compartment region checks (images carrying a Layout). Unlike
	// SANDBOX these trap instead of masking: Imm is the access width and
	// the check demands one region (or active grant) wholly containing
	// [rd, rd+Imm) with the required permission.
	CHKR // trap unless [rd, rd+imm) is readable in the compartment layout
	CHKW // trap unless [rd, rd+imm) is writable in the compartment layout
	CHKS // trap unless [rd, rd+imm) is writable *stack* (confines pushes)
	opCount
)

var opNames = [...]string{
	NOP: "nop", MOVI: "movi", MOV: "mov", ADD: "add", SUB: "sub",
	MUL: "mul", DIV: "div", MOD: "mod", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", ADDI: "addi", ANDI: "andi", CMPEQ: "cmpeq",
	CMPLT: "cmplt", CMPLE: "cmple", JMP: "jmp", JZ: "jz", JNZ: "jnz",
	LD: "ld", LDB: "ldb", ST: "st", STB: "stb", PUSH: "push", POP: "pop",
	CALL: "call", CALLR: "callr", CALLK: "callk", RET: "ret",
	HALT: "halt", LEA: "lea", SANDBOX: "sandbox", CHKCALL: "chkcall",
	CHKR: "chkr", CHKW: "chkw", CHKS: "chks",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Register indices with architectural roles.
const (
	// NumRegs is the register file size.
	NumRegs = 16
	// RegScratch0 and RegScratch1 are reserved for the SFI rewriter;
	// the assembler refuses them in source (names s0/s1 are still
	// printable by the disassembler).
	RegScratch0 = 12
	RegScratch1 = 13
	// RegSP is the stack pointer.
	RegSP = 15
)

// Instr is one GIR instruction. Rd/Rs1/Rs2 are register indices; Imm is
// the immediate (value, branch target, kernel symbol index, or
// load/store displacement depending on the opcode).
type Instr struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int64
}

func (i Instr) String() string {
	r := regName
	switch i.Op {
	case NOP, RET, HALT:
		return i.Op.String()
	case MOVI:
		return fmt.Sprintf("movi %s, %d", r(i.Rd), i.Imm)
	case MOV:
		return fmt.Sprintf("mov %s, %s", r(i.Rd), r(i.Rs1))
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, CMPEQ, CMPLT, CMPLE:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, r(i.Rd), r(i.Rs1), r(i.Rs2))
	case ADDI, ANDI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rd), r(i.Rs1), i.Imm)
	case JMP:
		return fmt.Sprintf("jmp %d", i.Imm)
	case JZ, JNZ:
		return fmt.Sprintf("%s %s, %d", i.Op, r(i.Rs1), i.Imm)
	case LD, LDB:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op, r(i.Rd), r(i.Rs1), i.Imm)
	case ST, STB:
		return fmt.Sprintf("%s [%s%+d], %s", i.Op, r(i.Rs1), i.Imm, r(i.Rs2))
	case PUSH:
		return fmt.Sprintf("push %s", r(i.Rs1))
	case POP:
		return fmt.Sprintf("pop %s", r(i.Rd))
	case CALL:
		return fmt.Sprintf("call %d", i.Imm)
	case LEA:
		return fmt.Sprintf("lea %s, %d", r(i.Rd), i.Imm)
	case CALLR:
		return fmt.Sprintf("callr %s", r(i.Rs1))
	case CALLK:
		return fmt.Sprintf("callk sym%d", i.Imm)
	case SANDBOX:
		return fmt.Sprintf("sandbox %s", r(i.Rd))
	case CHKCALL:
		return fmt.Sprintf("chkcall %s", r(i.Rs1))
	case CHKR, CHKW, CHKS:
		return fmt.Sprintf("%s %s, %d", i.Op, r(i.Rd), i.Imm)
	}
	return fmt.Sprintf("%s rd=%d rs1=%d rs2=%d imm=%d", i.Op, i.Rd, i.Rs1, i.Rs2, i.Imm)
}

func regName(i uint8) string {
	switch i {
	case RegScratch0:
		return "s0"
	case RegScratch1:
		return "s1"
	case RegSP:
		return "sp"
	}
	return fmt.Sprintf("r%d", i)
}

// immIsCodeAddr reports whether the instruction's Imm is a code address
// that the rewriter must remap when it inserts instructions.
func (i Instr) immIsCodeAddr() bool {
	switch i.Op {
	case JMP, JZ, JNZ, CALL, LEA:
		return true
	}
	return false
}

// readsMem and writesMem classify memory-access instructions for the
// rewriter and the verifier.
func (i Instr) accessesMem() bool {
	switch i.Op {
	case LD, LDB, ST, STB, PUSH, POP:
		return true
	}
	return false
}

// Costs is the per-instruction cycle model. Values approximate the
// paper's 120 MHz Pentium: ordinary ALU ops one cycle, memory ops a few,
// the sandbox mask 2–5 cycles per protected access, the indirect-call
// hash probe 10–15 cycles, and a kernel call the ~35-cycle function-call
// cost from §6.
type Costs struct {
	Default int64
	MulDiv  int64
	Mem     int64
	Sandbox int64
	ChkCall int64
	Call    int64
	CallK   int64
	// RegionCheck is the per-access cost of a compartment bounds+perm
	// check (CHKR/CHKW/CHKS) — a compare chain over the region table
	// rather than SANDBOX's single mask, hence slightly dearer.
	RegionCheck int64
}

// DefaultCosts returns the paper-calibrated cost model.
func DefaultCosts() Costs {
	return Costs{Default: 1, MulDiv: 10, Mem: 2, Sandbox: 3, ChkCall: 12, Call: 4, CallK: 35, RegionCheck: 4}
}

// cost returns the cycle cost of executing one instruction.
func (c Costs) cost(op Op) int64 {
	switch op {
	case MUL, DIV, MOD:
		return c.MulDiv
	case LD, LDB, ST, STB, PUSH, POP:
		return c.Mem
	case SANDBOX:
		return c.Sandbox
	case CHKR, CHKW, CHKS:
		return c.RegionCheck
	case CHKCALL:
		return c.ChkCall
	case CALL, CALLR, RET:
		return c.Call
	case CALLK:
		return c.CallK
	}
	return c.Default
}
