package sfi

// Loader robustness: the image decoder parses bytes supplied by
// untrusted users, so it must never panic, never allocate absurdly, and
// anything it accepts must either verify or be rejected by Verify —
// garbage in, error out.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestPropertyDecodeNeverPanics feeds arbitrary bytes to both decoders.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		if img, err := Decode(data); err == nil {
			_ = Verify(img) // must not panic either
		}
		if img, err := DecodeSigned(data); err == nil {
			_ = Verify(img)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDecodeMutatedImages starts from a valid image and flips
// bytes: the decoder either rejects the result or produces something
// the verifier/signature layer handles without panicking — and the
// signature never verifies on a mutated body.
func TestPropertyDecodeMutatedImages(t *testing.T) {
	base := mustAssemble(t, `
.name victim
.import vino.log
.data "payload"
.func main
.target aux
main:
    ld r1, [r10+0]
    st [r10+8], r1
    lea r2, aux
    callr r2
    callk vino.log
    ret
aux:
    ret
`)
	signer := NewSigner([]byte("trusted"))
	safe, _, err := Rewrite(base)
	if err != nil {
		t.Fatal(err)
	}
	signer.Sign(safe)
	blob := safe.EncodeSigned()

	f := func(seed int64, nFlips uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		mut := append([]byte(nil), blob...)
		flips := int(nFlips%8) + 1
		changed := false
		for i := 0; i < flips; i++ {
			pos := rng.Intn(len(mut))
			old := mut[pos]
			mut[pos] ^= byte(1 + rng.Intn(255))
			if mut[pos] != old {
				changed = true
			}
		}
		img, err := DecodeSigned(mut)
		if err != nil {
			return true // rejected outright: fine
		}
		if !changed {
			return true
		}
		// Decoded despite mutation: the signature must fail (the loader
		// would refuse it), except for the vanishingly rare case where
		// only signature bytes were flipped — which also fails.
		if signer.Verify(img) {
			// The mutation must have produced a byte-identical encoding.
			enc := img.EncodeSigned()
			if len(enc) != len(blob) {
				return false
			}
			for i := range enc {
				if enc[i] != blob[i] {
					return false
				}
			}
		}
		_ = Verify(img)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRandomInstructionStreamsContained: arbitrary instruction
// sequences (valid opcodes, random operands) marked Safe either fail
// verification, or execute without escaping the sandbox.
func TestPropertyRandomInstructionStreamsContained(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%30) + 1
		img := &Image{Name: "rand", Funcs: map[string]int{"main": 0}}
		for i := 0; i < count; i++ {
			img.Code = append(img.Code, Instr{
				Op:  Op(rng.Intn(int(opCount))),
				Rd:  uint8(rng.Intn(NumRegs)),
				Rs1: uint8(rng.Intn(NumRegs)),
				Rs2: uint8(rng.Intn(NumRegs)),
				Imm: int64(rng.Intn(2*count)) - int64(count),
			})
		}
		img.Code = append(img.Code, Instr{Op: RET})
		img.Safe = true
		if err := Verify(img); err != nil {
			return true // rejected: the loader would never run it
		}
		vm, err := NewVM(img, Config{MaxCycles: 50_000, Kernel: map[string]KernelFunc{}})
		if err != nil {
			return true
		}
		kmem := vm.KernelMemory()
		for i := range kmem {
			kmem[i] = 0xA5
		}
		_, _ = vm.Call("main") // any error (violation, fuel) is fine
		for _, b := range kmem {
			if b != 0xA5 {
				return false // escaped the sandbox: never acceptable
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecode is the native-fuzzing form of the properties above: the
// image decoders must never panic on arbitrary bytes, and anything they
// accept must survive the verifier and signature layer. CI runs this
// briefly (-fuzz FuzzDecode -fuzztime 30s); longer local runs grow the
// corpus.
func FuzzDecode(f *testing.F) {
	valid := mustAssemble(f, `
.name fuzzseed
.func main
main:
    movi r0, 7
    ret
`)
	f.Add(valid.Encode())
	f.Add(valid.EncodeSigned())
	f.Add([]byte{})
	f.Add([]byte("VINO"))
	comp, _, err := BuildCompartmented(`
.name fuzzcomp
.func main
main:
    st [r10+0], r1
    ret
`, NewSigner([]byte("fuzz")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(comp.Encode()) // GIR2: exercises the region-table decoder
	f.Fuzz(func(t *testing.T, data []byte) {
		if img, err := Decode(data); err == nil {
			_ = Verify(img)
			_ = img.Encode() // re-encoding an accepted image must not panic
		}
		if img, err := DecodeSigned(data); err == nil {
			_ = Verify(img)
		}
	})
}

// genTranslateFuzzSrc turns a byte string into a GIR program drawn from
// templates chosen to stress every translator path: ALU traffic, div and
// mod (zero divisors included), heap loads/stores at in-range and
// out-of-range offsets, byte-width accesses, push/pop (balanced and
// underflowing), wild-pointer stores, forward branches, and kernel
// calls. Every program ends in ret, so termination is bounded by the
// branch structure or the cycle cap.
func genTranslateFuzzSrc(data []byte) string {
	if len(data) > 512 { // bound program size: keep per-exec cost flat
		data = data[:512]
	}
	var b strings.Builder
	b.WriteString(".name fdiff\n.import test.mix\n.func main\nmain:\n")
	b.WriteString("    movi r1, 9\n    movi r2, 5\n    movi r3, 3\n")
	i := 0
	arg := func() int {
		if i >= len(data) {
			return 0
		}
		v := int(data[i])
		i++
		return v
	}
	reg := func() int { return 1 + arg()%7 } // r1..r7: keep r10/r11/sp intact
	alu := []string{"add", "sub", "mul", "and", "or", "xor", "shl", "shr"}
	for i < len(data) {
		switch arg() % 12 {
		case 0:
			fmt.Fprintf(&b, "    movi r%d, %d\n", reg(), arg()-128)
		case 1:
			fmt.Fprintf(&b, "    addi r%d, r%d, %d\n", reg(), reg(), arg()-128)
		case 2:
			fmt.Fprintf(&b, "    %s r%d, r%d, r%d\n", alu[arg()%len(alu)], reg(), reg(), reg())
		case 3:
			fmt.Fprintf(&b, "    div r%d, r%d, r%d\n", reg(), reg(), reg())
		case 4:
			fmt.Fprintf(&b, "    mod r%d, r%d, r%d\n", reg(), reg(), reg())
		case 5: // heap store+load; offsets up to ~24k cross region bounds
			r := reg()
			off := arg() * 97
			fmt.Fprintf(&b, "    addi r%d, r10, %d\n    st [r%d+0], r%d\n    ld r%d, [r%d+0]\n", r, off, r, reg(), reg(), r)
		case 6: // byte-width traffic
			r := reg()
			fmt.Fprintf(&b, "    addi r%d, r10, %d\n    stb [r%d+0], r%d\n    ldb r%d, [r%d+0]\n", r, arg()%4096, r, reg(), reg(), r)
		case 7: // balanced push/pop
			r := reg()
			fmt.Fprintf(&b, "    push r%d\n    pop r%d\n", r, reg())
		case 8: // lone pop: may underflow the shadow/stack — trap parity
			fmt.Fprintf(&b, "    pop r%d\n", reg())
		case 9: // wild-pointer store: whatever the register holds
			fmt.Fprintf(&b, "    st [r%d+0], r%d\n", reg(), reg())
		case 10:
			fmt.Fprintf(&b, "    jz r%d, end\n", reg())
		case 11:
			fmt.Fprintf(&b, "    movi r1, %d\n    movi r2, %d\n    callk test.mix\n", arg()%64, arg()%64)
		}
	}
	b.WriteString("end:\n    ret\n")
	return b.String()
}

// FuzzTranslateDiff is the differential fuzz target for the install-time
// translator: every generated program, under every toolchain pipeline,
// must behave bit-identically on the interpreter and the translated
// closure engine — result, trap, all registers, heap bytes, kernel
// memory, cycle accounting, hook-flush schedule, and grant audits. Any
// divergence ExecDiff can see is a translator bug. CI runs this briefly
// (-fuzz FuzzTranslateDiff -fuzztime 30s).
func FuzzTranslateDiff(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0), uint8(0))
	f.Add([]byte{0, 10, 1, 2, 3, 4, 5, 200, 7, 9, 11, 3}, uint8(3), uint8(0), uint8(0))
	f.Add([]byte{5, 255, 1, 9, 2, 2, 8, 4}, uint8(4), uint8(0), uint8(1))
	f.Add([]byte{3, 0, 0, 0, 10, 1, 11, 9, 9}, uint8(1), uint8(2), uint8(0))
	f.Add([]byte{7, 1, 8, 2, 5, 3, 6, 4, 0, 5, 2, 6}, uint8(2), uint8(30), uint8(1))
	builders := map[uint8]func(string, *Signer) (*Image, RewriteStats, error){
		1: BuildSafe,
		2: BuildSafeOptimized,
		3: BuildCompartmented,
		4: BuildCompartmentedOptimized,
	}
	signer := NewSigner([]byte("fuzz-diff"))
	f.Fuzz(func(t *testing.T, data []byte, pipeline, cycles, grant uint8) {
		src := genTranslateFuzzSrc(data)
		var img *Image
		var err error
		if build, ok := builders[pipeline%5]; ok {
			img, _, err = build(src, signer)
		} else {
			img, err = BuildUnsafe(src)
		}
		if err != nil {
			t.Skip() // the generator emitted something a pipeline refuses
		}
		cfg := Config{Kernel: mixKernel(), HookEvery: 32, Hook: func(int64) {}}
		if cycles > 0 {
			cfg.MaxCycles = int64(cycles)*50 + 100 // small caps: fuel-trap parity
		} else {
			cfg.MaxCycles = 1 << 20
		}
		var prep func(*VM) error
		if grant&1 == 1 && img.Layout != nil {
			prep = func(vm *VM) error {
				_, err := vm.Grant(40960, 64, PermRW)
				return err
			}
		}
		if err := ExecDiff(img, cfg, prep, "main"); err != nil {
			t.Fatalf("engines diverge:\n%v\nsource:\n%s", err, src)
		}
	})
}

// FuzzVerifyCompartments throws malformed region tables — overlapping
// regions, zero-length, out-of-segment, bad permission bits, wrong
// kinds — at the verifier. The invariant: Verify never panics, and
// anything it accepts must have a valid layout that a VM will
// instantiate and that survives an encode/decode round trip.
func FuzzVerifyCompartments(f *testing.F) {
	// Seeds: the canonical default layout plus one of each malformation.
	d := DefaultLayout(64 << 10)
	add := func(r1, r2 Region) {
		f.Add(d.SegSize,
			r1.Off, r1.Size, uint8(r1.Kind), uint8(r1.Perm),
			r2.Off, r2.Size, uint8(r2.Kind), uint8(r2.Perm), true)
	}
	add(d.Regions[0], d.Regions[3])                                                                    // heap + stack: valid
	add(Region{Off: 0, Size: 4096, Perm: 3}, Region{Off: 2048, Size: 4096, Kind: 1, Perm: 3})          // overlapping
	add(Region{Off: 0, Size: 0, Perm: 3}, Region{Off: 4096, Size: 4096, Kind: 1, Perm: 3})             // zero-length
	add(Region{Off: 0, Size: 4096, Perm: 3}, Region{Off: 1 << 40, Size: 4096, Kind: 1, Perm: 3})       // out of segment
	add(Region{Off: 0, Size: 4096, Perm: 7}, Region{Off: 4096, Size: 4096, Kind: 1, Perm: 3})          // bad perm bits
	add(Region{Off: 0, Size: 4096, Kind: 9, Perm: 3}, Region{Off: 4096, Size: 4096, Kind: 1, Perm: 3}) // bad kind
	f.Fuzz(func(t *testing.T, segSize,
		off1, size1 int64, kind1, perm1 uint8,
		off2, size2 int64, kind2, perm2 uint8, safe bool) {
		img := &Image{
			Name: "fuzz-comp",
			Code: []Instr{
				{Op: ADDI, Rd: 1, Rs1: RegHeapBase, Imm: 16},
				{Op: CHKW, Rd: 1, Imm: 8},
				{Op: ST, Rs1: 1, Rs2: 2},
				{Op: RET},
			},
			Funcs: map[string]int{"main": 0},
			Safe:  safe,
			Layout: &Layout{SegSize: segSize, Regions: []Region{
				{Name: "a", Kind: RegionKind(kind1), Off: off1, Size: size1, Perm: Perm(perm1)},
				{Name: "b", Kind: RegionKind(kind2), Off: off2, Size: size2, Perm: Perm(perm2)},
			}},
		}
		if err := Verify(img); err != nil {
			return
		}
		if err := img.Layout.Validate(); err != nil {
			t.Fatalf("Verify accepted an invalid layout: %v", err)
		}
		back, err := Decode(img.Encode())
		if err != nil {
			t.Fatalf("accepted image does not round-trip: %v", err)
		}
		if err := Verify(back); err != nil {
			t.Fatalf("round-tripped image no longer verifies: %v", err)
		}
		if segSize <= 1<<20 { // keep the fuzz arena small
			if _, err := NewVM(img, Config{}); err != nil {
				t.Fatalf("verified image rejected by the VM: %v", err)
			}
		}
	})
}
