package sfi

import "fmt"

// RewriteStats reports what the SFI rewriter did to an image.
type RewriteStats struct {
	MemOpsProtected   int
	IndirectProtected int
	InstrsAdded       int
	// StaticallySafe counts memory accesses whose checks the optimizer
	// discharged at rewrite time (see static.go).
	StaticallySafe int
}

// RewriteOptions selects rewriter behaviour.
type RewriteOptions struct {
	// StaticDischarge enables the optimizer: accesses whose addresses
	// are provably inside the segment keep their original form with no
	// masking instructions. The verifier independently re-proves each
	// discharged access, so enabling this never weakens the loader's
	// guarantees.
	StaticDischarge bool
}

// Rewrite is the MiSFIT pass: it returns a copy of the image in which
// every memory access is preceded by an explicit SANDBOX mask of the
// effective address and every indirect call by a CHKCALL probe of the
// call-target table. Branch targets, LEA immediates, entry points and
// the call-target list are remapped around the inserted instructions.
//
// The transformations, mirroring §3.3's "code is added to force the
// target address to fall within the range of memory allocated to the
// graft":
//
//	ld  rd, [rs+off]  =>  addi s0, rs, off; sandbox s0; ld  rd, [s0]
//	st  [rs+off], r   =>  addi s0, rs, off; sandbox s0; st  [s0], r
//	push r            =>  addi sp, sp, -8;  sandbox sp; st  [sp], r
//	pop  rd           =>  sandbox sp; ld rd, [sp]; addi sp, sp, 8
//	callr r           =>  chkcall r; callr r
//
// For an image carrying a compartment Layout the mask is replaced by a
// trapping per-region bounds+permission check of the access width
// (loads must hit readable space, stores writable space, pushes the
// stack region specifically):
//
//	ld  rd, [rs+off]  =>  addi s0, rs, off; chkr s0, 8; ld  rd, [s0]
//	st  [rs+off], r   =>  addi s0, rs, off; chkw s0, 8; st  [s0], r
//	push r            =>  addi sp, sp, -8;  chks sp, 8; st  [sp], r
//	pop  rd           =>  chkr sp, 8; ld rd, [sp]; addi sp, sp, 8
//
// The cost is 2 extra instructions (a few cycles) per load or store and
// one hash probe per indirect call — the same overhead structure the
// paper measures. The rewritten image is marked Safe; its signature is
// cleared and must be re-issued by the toolchain signer.
func Rewrite(img *Image) (*Image, RewriteStats, error) {
	return RewriteWith(img, RewriteOptions{})
}

// RewriteOptimized is Rewrite with the static-discharge optimizer on.
func RewriteOptimized(img *Image) (*Image, RewriteStats, error) {
	return RewriteWith(img, RewriteOptions{StaticDischarge: true})
}

// RewriteWith is the MiSFIT pass with explicit options.
func RewriteWith(img *Image, opts RewriteOptions) (*Image, RewriteStats, error) {
	var stats RewriteStats
	out := img.Clone()
	out.Sig = nil

	// The optimizer's analysis over the original code: which accesses
	// are provably in-segment.
	safeAt := make(map[int]bool)
	if opts.StaticDischarge {
		staticEval(img, func(pc int, ins Instr, ok bool) {
			if ok {
				safeAt[pc] = true
			}
		})
	}

	oldLen := len(img.Code)
	newPC := make([]int, oldLen+1)
	var code []Instr
	for pc, ins := range img.Code {
		newPC[pc] = len(code)
		if safeAt[pc] {
			// Statically discharged: the access keeps its original form.
			stats.StaticallySafe++
			code = append(code, ins)
			continue
		}
		comp := img.Layout != nil
		switch ins.Op {
		case LD, LDB, ST, STB:
			stats.MemOpsProtected++
			width := int64(8)
			if ins.Op == LDB || ins.Op == STB {
				width = 1
			}
			check := Instr{Op: SANDBOX, Rd: RegScratch0}
			if comp {
				chk := CHKR
				if ins.Op == ST || ins.Op == STB {
					chk = CHKW
				}
				check = Instr{Op: chk, Rd: RegScratch0, Imm: width}
			}
			code = append(code,
				Instr{Op: ADDI, Rd: RegScratch0, Rs1: ins.Rs1, Imm: ins.Imm},
				check,
			)
			prot := ins
			prot.Rs1 = RegScratch0
			prot.Imm = 0
			code = append(code, prot)
		case PUSH:
			stats.MemOpsProtected++
			check := Instr{Op: SANDBOX, Rd: RegSP}
			if comp {
				check = Instr{Op: CHKS, Rd: RegSP, Imm: 8}
			}
			code = append(code,
				Instr{Op: ADDI, Rd: RegSP, Rs1: RegSP, Imm: -8},
				check,
				Instr{Op: ST, Rs1: RegSP, Rs2: ins.Rs1},
			)
		case POP:
			stats.MemOpsProtected++
			check := Instr{Op: SANDBOX, Rd: RegSP}
			if comp {
				check = Instr{Op: CHKR, Rd: RegSP, Imm: 8}
			}
			code = append(code,
				check,
				Instr{Op: LD, Rd: ins.Rd, Rs1: RegSP},
				Instr{Op: ADDI, Rd: RegSP, Rs1: RegSP, Imm: 8},
			)
		case CALLR:
			stats.IndirectProtected++
			code = append(code,
				Instr{Op: CHKCALL, Rs1: ins.Rs1},
				ins,
			)
		default:
			code = append(code, ins)
		}
	}
	newPC[oldLen] = len(code)
	stats.InstrsAdded = len(code) - oldLen

	remap := func(target int64, what string) (int64, error) {
		if target < 0 || target > int64(oldLen) {
			return 0, fmt.Errorf("sfi: rewrite: %s target %d outside code [0,%d]", what, target, oldLen)
		}
		return int64(newPC[target]), nil
	}
	for i := range code {
		if code[i].immIsCodeAddr() {
			t, err := remap(code[i].Imm, code[i].Op.String())
			if err != nil {
				return nil, stats, err
			}
			code[i].Imm = t
		}
	}
	out.Code = code
	out.Funcs = make(map[string]int, len(img.Funcs))
	for name, pc := range img.Funcs {
		t, err := remap(int64(pc), ".func "+name)
		if err != nil {
			return nil, stats, err
		}
		out.Funcs[name] = int(t)
	}
	out.CallTargets = out.CallTargets[:0]
	for _, pc := range img.CallTargets {
		t, err := remap(int64(pc), ".target")
		if err != nil {
			return nil, stats, err
		}
		out.CallTargets = append(out.CallTargets, int(t))
	}
	out.Safe = true
	return out, stats, nil
}
