package sfi

import (
	"errors"
	"fmt"
	"sort"
)

// KernelFunc is a kernel function exposed to grafts via CALLK. Arguments
// arrive in r1..r5; the result is placed in r0. Returning an error aborts
// the graft (the kernel wrapper turns it into a transaction abort).
type KernelFunc func(vm *VM, args [5]int64) (int64, error)

// Violation is an SFI trap: a checked indirect call to an unregistered
// target, an arithmetic trap, or (for hand-written "safe" code that
// escaped the verifier) an out-of-range access. The kernel responds by
// aborting the graft's transaction — the kernel itself survives.
type Violation struct {
	PC     int
	Ins    string
	Detail string
	// Compartment marks a per-region bounds/permission trap (CHKR/CHKW/
	// CHKS): the graft tried to read or write memory its compartment
	// layout denies. The dispatch layer escalates these into classified
	// sfi-violation kernel panics when crash containment is armed.
	Compartment bool
}

func (v *Violation) Error() string {
	return fmt.Sprintf("sfi: violation at pc=%d (%s): %s", v.PC, v.Ins, v.Detail)
}

// IsCompartmentViolation reports whether err is (or wraps) a
// compartment region-check trap.
func IsCompartmentViolation(err error) bool {
	var v *Violation
	return errors.As(err, &v) && v.Compartment
}

// CrashError is what happens when an *unprotected* graft escapes its
// segment entirely: in a real kernel a wild supervisor-mode access
// panics the machine. The simulator surfaces it as this error so
// experiments can count would-be crashes.
type CrashError struct {
	PC     int
	Ins    string
	Detail string
}

func (c *CrashError) Error() string {
	return fmt.Sprintf("sfi: KERNEL CRASH at pc=%d (%s): %s", c.PC, c.Ins, c.Detail)
}

// ErrCycleLimit reports that the VM's fuel budget was exhausted.
var ErrCycleLimit = errors.New("sfi: cycle limit exhausted")

// ABI register assignments: on entry the VM passes the graft its heap
// base and segment size so position-independent code can find its data.
const (
	// RegHeapBase (r10) holds the sandbox segment base address on entry.
	RegHeapBase = 10
	// RegHeapSize (r11) holds the segment size on entry.
	RegHeapSize = 11
)

// Config parameterises a VM instance.
type Config struct {
	// KernelMem is the size in bytes of the simulated kernel memory that
	// sits below the graft segment in the arena. Unprotected grafts can
	// scribble on it; SFI-rewritten grafts cannot reach it. Default 64 KiB.
	KernelMem int
	// SegSize is the graft segment (heap+stack) size; must be a power of
	// two. Default 64 KiB.
	SegSize int
	// Costs is the cycle model; nil uses DefaultCosts.
	Costs *Costs
	// Hook, if set, receives accumulated cycles roughly every HookEvery
	// cycles and at kernel-call and completion boundaries. The kernel
	// wires it to Thread.ChargeCycles, which is what makes graft code
	// preemptible and abortable mid-execution.
	Hook func(cycles int64)
	// HookEvery is the flush threshold in cycles. Default 2000.
	HookEvery int64
	// MaxCycles, when positive, bounds total execution (fuel).
	MaxCycles int64
	// Kernel maps symbol names to implementations; every symbol the
	// image imports must resolve.
	Kernel map[string]KernelFunc
	// Translate compiles the image to native Go closures at VM
	// construction (see translate.go) instead of interpreting GIR per
	// step. Semantics are bit-identical — the interpreter remains the
	// oracle — only host wall-clock changes.
	Translate bool
	// Program installs an already-translated program (the registry's
	// install-time cache). Its TranslationKey must match the image:
	// NewVM refuses a stale or foreign program rather than executing
	// closures compiled from different code.
	Program *Program
}

// VM executes one graft image inside a private sandbox.
type VM struct {
	img     *Image
	arena   []byte
	segBase uint64
	segSize uint64
	regs    [NumRegs]int64
	shadow  []int
	costs   Costs
	hook    func(int64)
	hookEvr int64
	pending int64
	total   int64
	steps   int64
	maxCyc  int64
	kernel  []KernelFunc
	table   *CallTable
	// Compartment state (nil layout = classic flat sandbox).
	layout    *Layout
	grants    []grantWindow
	nextGrant int
	// Translated engine state: prog is the closure chain (nil =
	// interpret), costTab the cycle model indexed by opcode so closures
	// skip the cost switch.
	prog    *Program
	costTab [opCount]int64
	// Grant-window audit: accesses that only an active grant allowed,
	// keyed by the region the window lives in. Both engines funnel
	// grant-satisfied checks through regionCheck, so the counters are
	// engine-independent.
	grantReads  map[string]int64
	grantWrites map[string]int64
}

// grantWindow is one per-dispatch shared-buffer grant inside the share
// region; segment-relative like Region bounds.
type grantWindow struct {
	id   int
	off  int64
	size int64
	perm Perm
}

// NewVM prepares a VM for the image. The image's initial data is copied
// to the bottom of the segment; kernel memory below the segment is
// zeroed (the kernel may seed it via KernelMemory for experiments).
func NewVM(img *Image, cfg Config) (*VM, error) {
	if img.Layout != nil {
		// The layout's static-discharge proofs are against its exact
		// region bounds, so the segment size is dictated by the image:
		// a mismatched VM would turn those proofs into lies.
		if err := img.Layout.Validate(); err != nil {
			return nil, err
		}
		if cfg.SegSize != 0 && int64(cfg.SegSize) != img.Layout.SegSize {
			return nil, fmt.Errorf("sfi: VM segment %d does not match the image's compartment layout (%d)", cfg.SegSize, img.Layout.SegSize)
		}
		cfg.SegSize = int(img.Layout.SegSize)
		if heap := img.Layout.Regions[0]; int64(len(img.Data)) > heap.Size {
			return nil, fmt.Errorf("sfi: image data (%d bytes) exceeds heap region (%d)", len(img.Data), heap.Size)
		}
	}
	if cfg.SegSize == 0 {
		cfg.SegSize = 64 << 10
	}
	if cfg.SegSize&(cfg.SegSize-1) != 0 {
		return nil, fmt.Errorf("sfi: segment size %d not a power of two", cfg.SegSize)
	}
	if cfg.SegSize < MinSegSize {
		// Static discharge proves addresses against MinSegSize; smaller
		// segments would turn those proofs into lies.
		return nil, fmt.Errorf("sfi: segment size %d below the %d-byte architectural minimum", cfg.SegSize, MinSegSize)
	}
	if cfg.KernelMem == 0 {
		cfg.KernelMem = 64 << 10
	}
	if len(img.Data) > cfg.SegSize {
		return nil, fmt.Errorf("sfi: image data (%d bytes) exceeds segment (%d)", len(img.Data), cfg.SegSize)
	}
	if cfg.HookEvery <= 0 {
		cfg.HookEvery = 2000
	}
	// The sandbox mask computes segBase | (addr & (segSize-1)), which
	// requires the base to be segment-aligned.
	segBase := (uint64(cfg.KernelMem) + uint64(cfg.SegSize) - 1) &^ (uint64(cfg.SegSize) - 1)
	vm := &VM{
		img:     img,
		arena:   make([]byte, segBase+uint64(cfg.SegSize)),
		segBase: segBase,
		segSize: uint64(cfg.SegSize),
		costs:   DefaultCosts(),
		hook:    cfg.Hook,
		hookEvr: cfg.HookEvery,
		maxCyc:  cfg.MaxCycles,
		table:   NewCallTable(img.CallTargets),
		layout:  img.Layout,
	}
	if cfg.Costs != nil {
		vm.costs = *cfg.Costs
	}
	copy(vm.arena[segBase:], img.Data)
	vm.kernel = make([]KernelFunc, len(img.Symbols))
	for i, sym := range img.Symbols {
		fn, ok := cfg.Kernel[sym]
		if !ok {
			return nil, fmt.Errorf("sfi: unresolved kernel symbol %q", sym)
		}
		vm.kernel[i] = fn
	}
	for op := Op(0); op < opCount; op++ {
		vm.costTab[op] = vm.costs.cost(op)
	}
	switch {
	case cfg.Program != nil:
		if key := TranslationKey(img); cfg.Program.key != key {
			return nil, fmt.Errorf("sfi: translated program %s.. does not match image %q (%s..)", cfg.Program.key[:12], img.Name, key[:12])
		}
		vm.prog = cfg.Program
	case cfg.Translate:
		p, err := Translate(img)
		if err != nil {
			return nil, err
		}
		vm.prog = p
	}
	return vm, nil
}

// Image returns the image the VM executes.
func (vm *VM) Image() *Image { return vm.img }

// HeapBase returns the sandbox segment base address.
func (vm *VM) HeapBase() uint64 { return vm.segBase }

// HeapSize returns the sandbox segment size.
func (vm *VM) HeapSize() uint64 { return vm.segSize }

// Heap exposes the graft's segment for the kernel to seed inputs and
// read results (the simulated shared buffer of §4.1.2).
func (vm *VM) Heap() []byte { return vm.arena[vm.segBase:] }

// KernelMemory exposes the simulated kernel memory below the segment.
// Experiments seed it with sentinel bytes to detect stray writes from
// unprotected grafts.
func (vm *VM) KernelMemory() []byte { return vm.arena[:vm.segBase] }

// TotalCycles returns the cycles consumed so far.
func (vm *VM) TotalCycles() int64 { return vm.total }

// Steps returns the number of instructions executed.
func (vm *VM) Steps() int64 { return vm.steps }

// CallTable returns the indirect-call target table (for probe stats).
func (vm *VM) CallTable() *CallTable { return vm.table }

// Reg returns a register value (for tests and kernel functions).
func (vm *VM) Reg(i int) int64 { return vm.regs[i] }

// SetReg sets a register value (for kernel functions that return data
// through registers).
func (vm *VM) SetReg(i int, v int64) { vm.regs[i] = v }

func (vm *VM) charge(c int64) {
	vm.pending += c
	vm.total += c
	if vm.pending >= vm.hookEvr {
		vm.flush()
	}
}

// tick is the translated engine's per-instruction accounting: the
// exact steps/charge/fuel sequence the interpreter's loop head
// performs, in the same order, so preemption hooks flush and the fuel
// limit trips at identical instants on both engines.
func (vm *VM) tick(c int64) error {
	vm.steps++
	vm.charge(c)
	if vm.maxCyc > 0 && vm.total > vm.maxCyc {
		return fmt.Errorf("%w: %d cycles", ErrCycleLimit, vm.total)
	}
	return nil
}

func (vm *VM) flush() {
	if vm.hook != nil && vm.pending > 0 {
		p := vm.pending
		vm.pending = 0
		vm.hook(p) // may panic with sched.Abort: preemption/abort point
		return
	}
	vm.pending = 0
}

// Call runs the named entry point with up to five arguments and returns
// r0. Execution charges cycles to the hook, making the graft preemptible
// and abortable; asynchronous aborts propagate as panics from the hook
// through Call to the transaction wrapper.
func (vm *VM) Call(entry string, args ...int64) (int64, error) {
	pc, err := vm.img.Entry(entry)
	if err != nil {
		return 0, err
	}
	if len(args) > 5 {
		return 0, fmt.Errorf("sfi: at most 5 arguments, got %d", len(args))
	}
	vm.regs = [NumRegs]int64{}
	for i, a := range args {
		vm.regs[1+i] = a
	}
	vm.regs[RegHeapBase] = int64(vm.segBase)
	vm.regs[RegHeapSize] = int64(vm.segSize)
	vm.regs[RegSP] = int64(vm.segBase + vm.segSize)
	if vm.layout != nil {
		if st, ok := vm.layout.Region(RegionStack); ok {
			vm.regs[RegSP] = int64(vm.segBase) + st.Off + st.Size
		}
	}
	vm.shadow = vm.shadow[:0]
	defer vm.flush()
	var runErr error
	if vm.prog != nil {
		runErr = vm.prog.run(vm, pc)
	} else {
		runErr = vm.run(pc)
	}
	if runErr != nil {
		return 0, runErr
	}
	return vm.regs[0], nil
}

// Translated reports whether this VM dispatches through the translated
// closure program rather than the interpreter.
func (vm *VM) Translated() bool { return vm.prog != nil }

// TranslatedProgram returns the installed closure program (nil when
// interpreting).
func (vm *VM) TranslatedProgram() *Program { return vm.prog }

func (vm *VM) memErr(pc int, ins Instr, addr int64, n int) error {
	detail := fmt.Sprintf("access of %d bytes at address %d outside arena [0,%d)", n, addr, len(vm.arena))
	if vm.img.Safe {
		return &Violation{PC: pc, Ins: ins.String(), Detail: detail}
	}
	return &CrashError{PC: pc, Ins: ins.String(), Detail: detail}
}

func (vm *VM) load(pc int, ins Instr, addr int64, n int) (int64, error) {
	if addr < 0 || addr+int64(n) > int64(len(vm.arena)) {
		return 0, vm.memErr(pc, ins, addr, n)
	}
	var v int64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | int64(vm.arena[addr+int64(i)])
	}
	return v, nil
}

func (vm *VM) store(pc int, ins Instr, addr int64, n int, v int64) error {
	if addr < 0 || addr+int64(n) > int64(len(vm.arena)) {
		return vm.memErr(pc, ins, addr, n)
	}
	for i := 0; i < n; i++ {
		vm.arena[addr+int64(i)] = byte(uint64(v) >> (8 * i))
	}
	return nil
}

const maxShadowDepth = 1024

func (vm *VM) run(pc int) error {
	code := vm.img.Code
	for {
		if pc < 0 || pc >= len(code) {
			if vm.img.Safe {
				return &Violation{PC: pc, Ins: "?", Detail: "control flow left the code segment"}
			}
			return &CrashError{PC: pc, Ins: "?", Detail: "control flow left the code segment"}
		}
		ins := code[pc]
		vm.steps++
		vm.charge(vm.costs.cost(ins.Op))
		if vm.maxCyc > 0 && vm.total > vm.maxCyc {
			return fmt.Errorf("%w: %d cycles", ErrCycleLimit, vm.total)
		}
		r := &vm.regs
		switch ins.Op {
		case NOP:
		case MOVI, LEA:
			r[ins.Rd] = ins.Imm
		case MOV:
			r[ins.Rd] = r[ins.Rs1]
		case ADD:
			r[ins.Rd] = r[ins.Rs1] + r[ins.Rs2]
		case SUB:
			r[ins.Rd] = r[ins.Rs1] - r[ins.Rs2]
		case MUL:
			r[ins.Rd] = r[ins.Rs1] * r[ins.Rs2]
		case DIV:
			if r[ins.Rs2] == 0 {
				return &Violation{PC: pc, Ins: ins.String(), Detail: "division by zero"}
			}
			r[ins.Rd] = r[ins.Rs1] / r[ins.Rs2]
		case MOD:
			if r[ins.Rs2] == 0 {
				return &Violation{PC: pc, Ins: ins.String(), Detail: "division by zero"}
			}
			r[ins.Rd] = r[ins.Rs1] % r[ins.Rs2]
		case AND:
			r[ins.Rd] = r[ins.Rs1] & r[ins.Rs2]
		case OR:
			r[ins.Rd] = r[ins.Rs1] | r[ins.Rs2]
		case XOR:
			r[ins.Rd] = r[ins.Rs1] ^ r[ins.Rs2]
		case SHL:
			r[ins.Rd] = r[ins.Rs1] << (uint64(r[ins.Rs2]) & 63)
		case SHR:
			r[ins.Rd] = int64(uint64(r[ins.Rs1]) >> (uint64(r[ins.Rs2]) & 63))
		case ADDI:
			r[ins.Rd] = r[ins.Rs1] + ins.Imm
		case ANDI:
			r[ins.Rd] = r[ins.Rs1] & ins.Imm
		case CMPEQ:
			r[ins.Rd] = b2i(r[ins.Rs1] == r[ins.Rs2])
		case CMPLT:
			r[ins.Rd] = b2i(r[ins.Rs1] < r[ins.Rs2])
		case CMPLE:
			r[ins.Rd] = b2i(r[ins.Rs1] <= r[ins.Rs2])
		case JMP:
			pc = int(ins.Imm)
			continue
		case JZ:
			if r[ins.Rs1] == 0 {
				pc = int(ins.Imm)
				continue
			}
		case JNZ:
			if r[ins.Rs1] != 0 {
				pc = int(ins.Imm)
				continue
			}
		case LD:
			v, err := vm.load(pc, ins, r[ins.Rs1]+ins.Imm, 8)
			if err != nil {
				return err
			}
			r[ins.Rd] = v
		case LDB:
			v, err := vm.load(pc, ins, r[ins.Rs1]+ins.Imm, 1)
			if err != nil {
				return err
			}
			r[ins.Rd] = v
		case ST:
			if err := vm.store(pc, ins, r[ins.Rs1]+ins.Imm, 8, r[ins.Rs2]); err != nil {
				return err
			}
		case STB:
			if err := vm.store(pc, ins, r[ins.Rs1]+ins.Imm, 1, r[ins.Rs2]); err != nil {
				return err
			}
		case PUSH:
			r[RegSP] -= 8
			if err := vm.store(pc, ins, r[RegSP], 8, r[ins.Rs1]); err != nil {
				return err
			}
		case POP:
			v, err := vm.load(pc, ins, r[RegSP], 8)
			if err != nil {
				return err
			}
			r[ins.Rd] = v
			r[RegSP] += 8
		case CALL:
			if len(vm.shadow) >= maxShadowDepth {
				return &Violation{PC: pc, Ins: ins.String(), Detail: "call stack overflow"}
			}
			vm.shadow = append(vm.shadow, pc+1)
			pc = int(ins.Imm)
			continue
		case CALLR:
			if len(vm.shadow) >= maxShadowDepth {
				return &Violation{PC: pc, Ins: ins.String(), Detail: "call stack overflow"}
			}
			vm.shadow = append(vm.shadow, pc+1)
			pc = int(r[ins.Rs1])
			continue
		case CALLK:
			idx := int(ins.Imm)
			if idx < 0 || idx >= len(vm.kernel) {
				return &Violation{PC: pc, Ins: ins.String(), Detail: "kernel symbol index out of range"}
			}
			vm.flush() // kernel time is accounted separately by the callee
			var args [5]int64
			copy(args[:], r[1:6])
			res, err := vm.kernel[idx](vm, args)
			if err != nil {
				return fmt.Errorf("sfi: kernel call %s failed: %w", vm.img.Symbols[idx], err)
			}
			r[0] = res
		case RET:
			if len(vm.shadow) == 0 {
				return nil
			}
			pc = vm.shadow[len(vm.shadow)-1]
			vm.shadow = vm.shadow[:len(vm.shadow)-1]
			continue
		case HALT:
			return nil
		case SANDBOX:
			r[ins.Rd] = int64(vm.segBase | (uint64(r[ins.Rd]) & (vm.segSize - 1)))
		case CHKR, CHKW, CHKS:
			if err := vm.regionCheck(pc, ins); err != nil {
				return err
			}
		case CHKCALL:
			if !vm.table.Contains(r[ins.Rs1]) {
				return &Violation{PC: pc, Ins: ins.String(), Detail: fmt.Sprintf("indirect call to unregistered target %d", r[ins.Rs1])}
			}
		default:
			return &Violation{PC: pc, Ins: ins.String(), Detail: "illegal opcode"}
		}
		pc++
	}
}

// regionCheck executes CHKR/CHKW/CHKS: trap unless one region (or, for
// data checks, one active grant) wholly contains [rd, rd+Imm) with the
// required permission. CHKS additionally demands the region be the
// stack, confining pushes to it.
func (vm *VM) regionCheck(pc int, ins Instr) error {
	viol := func(detail string) error {
		return &Violation{PC: pc, Ins: ins.String(), Detail: detail, Compartment: true}
	}
	if vm.layout == nil {
		return viol("region check in an image without a compartment layout")
	}
	addr := vm.regs[ins.Rd]
	width := ins.Imm
	if width != 1 && width != 8 {
		return viol(fmt.Sprintf("bad check width %d", width))
	}
	off := addr - int64(vm.segBase)
	if off < 0 || off+width > vm.layout.SegSize {
		return viol(fmt.Sprintf("access of %d bytes at address %d outside the compartment segment", width, addr))
	}
	need := PermRead
	if ins.Op == CHKW || ins.Op == CHKS {
		need = PermWrite
	}
	reg := vm.layout.Find(off, width)
	if ins.Op == CHKS {
		if reg == nil || reg.Kind != RegionStack {
			return viol(fmt.Sprintf("stack write at segment offset %d escapes the stack region", off))
		}
	}
	if reg != nil && reg.Perm&need == need {
		return nil
	}
	if ins.Op != CHKS {
		for _, g := range vm.grants {
			if off >= g.off && off+width <= g.off+g.size && g.perm&need == need {
				vm.noteGrantUse(off, width, need)
				return nil
			}
		}
	}
	what := "read"
	if need == PermWrite {
		what = "write"
	}
	if reg != nil {
		return viol(fmt.Sprintf("%s of %d bytes at segment offset %d denied by region %q (%s, %s)", what, width, off, reg.Name, reg.Kind, reg.Perm))
	}
	return viol(fmt.Sprintf("%s of %d bytes at segment offset %d hits no region or active grant", what, width, off))
}

// noteGrantUse tallies an access that only an active grant window
// allowed (a statically-permitted region access never reaches the
// grant loop), keyed by the layout region the window lives in.
func (vm *VM) noteGrantUse(off, width int64, need Perm) {
	name := "?"
	if r := vm.layout.Find(off, width); r != nil {
		name = r.Name
	}
	if need == PermWrite {
		if vm.grantWrites == nil {
			vm.grantWrites = make(map[string]int64)
		}
		vm.grantWrites[name]++
		return
	}
	if vm.grantReads == nil {
		vm.grantReads = make(map[string]int64)
	}
	vm.grantReads[name]++
}

// GrantAudit is one region's tally of grant-window accesses: how often
// the graft touched memory it could only reach through a per-dispatch
// grant, not through its static compartment permissions.
type GrantAudit struct {
	Region string
	Reads  int64
	Writes int64
}

// GrantAudits returns the per-region grant-window usage counters,
// sorted by region name. Counters accumulate for the life of the VM;
// the dispatch layer harvests per-dispatch deltas into the guard
// health ledger.
func (vm *VM) GrantAudits() []GrantAudit {
	names := make(map[string]bool, len(vm.grantReads)+len(vm.grantWrites))
	for n := range vm.grantReads {
		names[n] = true
	}
	for n := range vm.grantWrites {
		names[n] = true
	}
	if len(names) == 0 {
		return nil
	}
	out := make([]GrantAudit, 0, len(names))
	for n := range names {
		out = append(out, GrantAudit{Region: n, Reads: vm.grantReads[n], Writes: vm.grantWrites[n]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

// Layout returns the compartment layout installed in this VM (nil for
// flat-sandbox images).
func (vm *VM) Layout() *Layout { return vm.layout }

// Grant opens a per-dispatch shared-buffer window: [off, off+size)
// must lie inside the layout's share region, which is otherwise
// inaccessible to the graft. Returns a grant id for Revoke. The
// dispatch layer revokes all grants when the dispatch returns, so a
// cached pointer is dead the moment the graft comes back.
func (vm *VM) Grant(off, size int64, perm Perm) (int, error) {
	if vm.layout == nil {
		return 0, errors.New("sfi: grant on an image without a compartment layout")
	}
	if size <= 0 || perm == PermNone || perm&^PermRW != 0 {
		return 0, fmt.Errorf("sfi: bad grant [%d,%d) perm %d", off, off+size, perm)
	}
	r := vm.layout.Find(off, size)
	if r == nil || r.Kind != RegionShare {
		return 0, fmt.Errorf("sfi: grant window [%d,%d) outside the share region", off, off+size)
	}
	vm.nextGrant++
	vm.grants = append(vm.grants, grantWindow{id: vm.nextGrant, off: off, size: size, perm: perm})
	return vm.nextGrant, nil
}

// Revoke withdraws one grant.
func (vm *VM) Revoke(id int) {
	for i, g := range vm.grants {
		if g.id == id {
			vm.grants = append(vm.grants[:i], vm.grants[i+1:]...)
			return
		}
	}
}

// RevokeGrants withdraws every active grant (dispatch-return barrier).
func (vm *VM) RevokeGrants() { vm.grants = vm.grants[:0] }

// ActiveGrants returns the number of live grant windows.
func (vm *VM) ActiveGrants() int { return len(vm.grants) }

// SeedRegion copies kernel-side data into the first region of the
// given kind and returns its absolute base address. This is how the
// kernel exports read-only data or stages a shared buffer; kernel-side
// writes are trusted and bypass the graft-facing permission checks.
func (vm *VM) SeedRegion(kind RegionKind, data []byte) (int64, error) {
	if vm.layout == nil {
		return 0, errors.New("sfi: no compartment layout to seed")
	}
	r, ok := vm.layout.Region(kind)
	if !ok {
		return 0, fmt.Errorf("sfi: layout has no %s region", kind)
	}
	if int64(len(data)) > r.Size {
		return 0, fmt.Errorf("sfi: %d bytes exceed %s region (%d)", len(data), kind, r.Size)
	}
	copy(vm.arena[vm.segBase+uint64(r.Off):], data)
	return int64(vm.segBase) + r.Off, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
