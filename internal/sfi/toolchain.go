package sfi

import "fmt"

// BuildSafe runs the full trusted toolchain on assembly source: assemble,
// structurally verify, SFI-rewrite, verify the rewritten image's safety
// invariants, and sign. The result is the only kind of image the kernel
// loader accepts.
func BuildSafe(src string, signer *Signer) (*Image, RewriteStats, error) {
	return buildSafe(src, signer, RewriteOptions{})
}

// BuildSafeOptimized is BuildSafe with the static-discharge optimizer
// enabled: provably in-segment accesses carry no run-time checks.
func BuildSafeOptimized(src string, signer *Signer) (*Image, RewriteStats, error) {
	return buildSafe(src, signer, RewriteOptions{StaticDischarge: true})
}

// BuildCompartmented is BuildSafe for the compartment pipeline: the
// image carries a per-region memory view (its own `.layout` if the
// source declares one, else DefaultLayout over the standard 64 KiB
// segment) and the rewriter lowers accesses to trapping region checks
// instead of the flat mask.
func BuildCompartmented(src string, signer *Signer) (*Image, RewriteStats, error) {
	return buildCompartmented(src, signer, RewriteOptions{})
}

// BuildCompartmentedOptimized is BuildCompartmented with static
// discharge on; discharges are proven against the exact region bounds.
func BuildCompartmentedOptimized(src string, signer *Signer) (*Image, RewriteStats, error) {
	return buildCompartmented(src, signer, RewriteOptions{StaticDischarge: true})
}

func buildCompartmented(src string, signer *Signer, opts RewriteOptions) (*Image, RewriteStats, error) {
	img, err := Assemble(src)
	if err != nil {
		return nil, RewriteStats{}, err
	}
	if img.Layout == nil {
		img.Layout = DefaultLayout(64 << 10)
	}
	return buildVerified(img, signer, opts)
}

func buildSafe(src string, signer *Signer, opts RewriteOptions) (*Image, RewriteStats, error) {
	img, err := Assemble(src)
	if err != nil {
		return nil, RewriteStats{}, err
	}
	return buildVerified(img, signer, opts)
}

func buildVerified(img *Image, signer *Signer, opts RewriteOptions) (*Image, RewriteStats, error) {
	if err := Verify(img); err != nil {
		return nil, RewriteStats{}, fmt.Errorf("pre-rewrite: %w", err)
	}
	safe, stats, err := RewriteWith(img, opts)
	if err != nil {
		return nil, stats, err
	}
	if err := Verify(safe); err != nil {
		return nil, stats, fmt.Errorf("post-rewrite (toolchain bug): %w", err)
	}
	if signer != nil {
		signer.Sign(safe)
	}
	return safe, stats, nil
}

// BuildUnsafe assembles and verifies source without SFI protection or a
// signature. Such images are rejected by the kernel loader; they exist
// for the measurement harness's "unsafe path" (Table 2) and for the
// misbehavior demonstrations.
func BuildUnsafe(src string) (*Image, error) {
	img, err := Assemble(src)
	if err != nil {
		return nil, err
	}
	if err := Verify(img); err != nil {
		return nil, err
	}
	return img, nil
}
