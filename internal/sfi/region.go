package sfi

import (
	"fmt"
	"strings"
)

// Per-compartment memory views (BULKHEAD-style).
//
// The flat SANDBOX mask forces every access into the graft segment but
// treats the segment as one undifferentiated blob: a graft can scribble
// over its own stack, the read-only data the kernel exported to it, or
// a buffer the kernel lent it for a different dispatch. A compartment
// layout splits the segment into typed regions with individual
// permissions; the rewriter then lowers each access to a bounds+perm
// check (CHKR/CHKW/CHKS) instead of a mask, so a violation *traps* —
// and is classified, billed and contained — rather than being silently
// wrapped to some other graft-owned byte.
//
// Layouts are strictly opt-in per image: an image without one keeps the
// flat-mask pipeline bit-for-bit, so existing goldens and signatures
// are untouched.

// Perm is a region permission bitmask.
type Perm uint8

// Region permissions.
const (
	PermNone Perm = 0
	PermRead Perm = 1 << 0
	PermWrite Perm = 1 << 1
	PermRW Perm = PermRead | PermWrite
)

func (p Perm) String() string {
	switch p {
	case PermNone:
		return "none"
	case PermRead:
		return "r"
	case PermWrite:
		return "w"
	case PermRW:
		return "rw"
	}
	return fmt.Sprintf("perm(%d)", uint8(p))
}

// ParsePerm parses an assembler permission token.
func ParsePerm(s string) (Perm, error) {
	switch strings.ToLower(s) {
	case "none":
		return PermNone, nil
	case "r":
		return PermRead, nil
	case "w":
		return PermWrite, nil
	case "rw":
		return PermRW, nil
	}
	return 0, fmt.Errorf("sfi: bad permission %q (want r|w|rw|none)", s)
}

// RegionKind types a region within a compartment layout.
type RegionKind uint8

// Region kinds.
const (
	// RegionHeap is the graft's private heap; image data loads at its base.
	RegionHeap RegionKind = iota
	// RegionStack is the only region PUSH-lowered stores (CHKS) may hit;
	// SP starts at its top.
	RegionStack
	// RegionRO holds kernel-exported read-only data.
	RegionRO
	// RegionShare is the grant window: statically inaccessible
	// (PermNone); the kernel opens per-dispatch windows into it with
	// VM.Grant and every grant is revoked when the dispatch returns.
	RegionShare
	regionKindCount
)

var regionKindNames = [...]string{
	RegionHeap: "heap", RegionStack: "stack", RegionRO: "ro", RegionShare: "share",
}

func (k RegionKind) String() string {
	if int(k) < len(regionKindNames) {
		return regionKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseRegionKind parses an assembler region-kind token.
func ParseRegionKind(s string) (RegionKind, error) {
	for k, n := range regionKindNames {
		if n == strings.ToLower(s) {
			return RegionKind(k), nil
		}
	}
	return 0, fmt.Errorf("sfi: bad region kind %q (want heap|stack|ro|share)", s)
}

// Region is one typed, permissioned window of the graft segment.
// Off/Size are segment-relative byte offsets.
type Region struct {
	Name string
	Kind RegionKind
	Off  int64
	Size int64
	Perm Perm
}

func (r Region) String() string {
	return fmt.Sprintf("%s %s [%d,%d) %s", r.Name, r.Kind, r.Off, r.Off+r.Size, r.Perm)
}

// Layout is the compartment description carried on an Image and
// installed into the VM at attach time. Regions are sorted by Off and
// disjoint; SegSize is the exact segment the image must run in (the
// static-discharge proofs below are against these bounds, so the VM
// refuses any other size).
type Layout struct {
	SegSize int64
	Regions []Region
}

// Clone returns a deep copy.
func (l *Layout) Clone() *Layout {
	if l == nil {
		return nil
	}
	return &Layout{SegSize: l.SegSize, Regions: append([]Region(nil), l.Regions...)}
}

// Validate checks the structural invariants every layout consumer
// (verifier, VM, static analysis) relies on.
func (l *Layout) Validate() error {
	if l.SegSize < MinSegSize {
		return fmt.Errorf("sfi: layout segment %d below the %d-byte architectural minimum", l.SegSize, MinSegSize)
	}
	if l.SegSize&(l.SegSize-1) != 0 {
		return fmt.Errorf("sfi: layout segment %d not a power of two", l.SegSize)
	}
	if len(l.Regions) == 0 {
		return fmt.Errorf("sfi: layout has no regions")
	}
	stacks := 0
	for i, r := range l.Regions {
		if r.Kind >= regionKindCount {
			return fmt.Errorf("sfi: region %d (%q): bad kind %d", i, r.Name, r.Kind)
		}
		if r.Perm&^PermRW != 0 {
			return fmt.Errorf("sfi: region %d (%q): bad permission bits %d", i, r.Name, r.Perm)
		}
		if r.Size <= 0 {
			return fmt.Errorf("sfi: region %d (%q): zero or negative size", i, r.Name)
		}
		if r.Off < 0 || r.Off > l.SegSize-r.Size {
			return fmt.Errorf("sfi: region %d (%q): [%d,%d) outside segment [0,%d)", i, r.Name, r.Off, r.Off+r.Size, l.SegSize)
		}
		if r.Off%8 != 0 || r.Size%8 != 0 {
			return fmt.Errorf("sfi: region %d (%q): bounds not 8-byte aligned", i, r.Name)
		}
		if i > 0 && r.Off < l.Regions[i-1].Off+l.Regions[i-1].Size {
			return fmt.Errorf("sfi: region %d (%q) overlaps or is unsorted after %q", i, r.Name, l.Regions[i-1].Name)
		}
		switch r.Kind {
		case RegionShare:
			if r.Perm != PermNone {
				return fmt.Errorf("sfi: region %d (%q): share regions are grant-only and must carry no static permission", i, r.Name)
			}
		case RegionStack:
			stacks++
			if r.Perm&PermWrite == 0 {
				return fmt.Errorf("sfi: region %d (%q): stack region must be writable", i, r.Name)
			}
		default:
			if r.Perm == PermNone {
				return fmt.Errorf("sfi: region %d (%q): unreachable region (no permissions)", i, r.Name)
			}
		}
	}
	if stacks != 1 {
		return fmt.Errorf("sfi: layout has %d stack regions, want exactly 1", stacks)
	}
	first := l.Regions[0]
	if first.Kind != RegionHeap || first.Off != 0 {
		return fmt.Errorf("sfi: first region must be the heap at offset 0 (image data loads there)")
	}
	return nil
}

// Find returns the single region fully containing [off, off+width), or
// nil. An access straddling a region boundary matches nothing — this is
// what forbids the optimizer (and the verifier's re-proof) from
// discharging an access across a boundary.
func (l *Layout) Find(off, width int64) *Region {
	for i := range l.Regions {
		r := &l.Regions[i]
		if off >= r.Off && width <= r.Size && off-r.Off <= r.Size-width {
			return r
		}
	}
	return nil
}

// Region returns the first region of the given kind.
func (l *Layout) Region(kind RegionKind) (Region, bool) {
	for _, r := range l.Regions {
		if r.Kind == kind {
			return r, true
		}
	}
	return Region{}, false
}

// allows reports whether the static layout alone (no grants) permits a
// read or write of width bytes at segment offset off.
func (l *Layout) allows(off, width int64, write bool) bool {
	r := l.Find(off, width)
	if r == nil {
		return false
	}
	need := PermRead
	if write {
		need = PermWrite
	}
	return r.Perm&need == need
}

// DefaultLayout carves a segment into the canonical four compartments:
// private heap (5/8, RW), share window (1/8, grant-only), kernel
// read-only exports (1/8, R), stack (1/8, RW at the top).
func DefaultLayout(segSize int) *Layout {
	s := int64(segSize)
	unit := s / 8
	return &Layout{
		SegSize: s,
		Regions: []Region{
			{Name: "heap", Kind: RegionHeap, Off: 0, Size: s - 3*unit, Perm: PermRW},
			{Name: "share", Kind: RegionShare, Off: s - 3*unit, Size: unit, Perm: PermNone},
			{Name: "ro", Kind: RegionRO, Off: s - 2*unit, Size: unit, Perm: PermRead},
			{Name: "stack", Kind: RegionStack, Off: s - unit, Size: unit, Perm: PermRW},
		},
	}
}
