package sfi

import (
	"fmt"
	"sort"
)

// Verify performs the structural checks the kernel loader applies before
// accepting an image. For every image it checks that control-flow
// targets, entry points, call targets and kernel-symbol indices are
// within range and that register fields are valid.
//
// For an image claiming Safe (i.e. "processed by MiSFIT") it
// additionally certifies the SFI invariants the rewriter establishes:
//
//   - every LD/LDB/ST/STB addresses through a register that was
//     SANDBOX-masked by the immediately preceding instruction, with a
//     zero displacement (so the masked value is the accessed address);
//   - PUSH and POP do not appear (the rewriter expands them);
//   - every CALLR is immediately preceded by a CHKCALL of the same
//     register;
//   - no branch target, entry point or call target lands *between* a
//     check and its protected instruction, so the check cannot be
//     bypassed by a jump.
//
// For an image carrying a compartment Layout the masking discipline is
// replaced by the region-check discipline: the layout itself must
// validate, SANDBOX is forbidden (a mask could move an address across
// region boundaries), and every unchecked access must be preceded by a
// matching-width CHKR (loads) or CHKW/CHKS (stores) of its address
// register. Static discharges are re-proven against the exact region
// bounds and permissions, so a forged image cannot discharge an access
// across a boundary or into read-only space.
//
// Together with the signature this realises the paper's rule 6: "the
// kernel must not execute grafts that are not known to be safe."
func Verify(img *Image) error {
	n := len(img.Code)
	for pc, ins := range img.Code {
		if ins.Rd >= NumRegs || ins.Rs1 >= NumRegs || ins.Rs2 >= NumRegs {
			return fmt.Errorf("sfi: verify: pc=%d: register out of range", pc)
		}
		if ins.Op >= opCount {
			return fmt.Errorf("sfi: verify: pc=%d: illegal opcode %d", pc, ins.Op)
		}
		if ins.immIsCodeAddr() {
			if ins.Imm < 0 || ins.Imm >= int64(n) {
				return fmt.Errorf("sfi: verify: pc=%d: %s target %d outside code", pc, ins.Op, ins.Imm)
			}
		}
		if ins.Op == CALLK {
			if ins.Imm < 0 || ins.Imm >= int64(len(img.Symbols)) {
				return fmt.Errorf("sfi: verify: pc=%d: callk symbol index %d outside symbol table", pc, ins.Imm)
			}
		}
		if ins.Op == CHKR || ins.Op == CHKW || ins.Op == CHKS {
			if ins.Imm != 1 && ins.Imm != 8 {
				return fmt.Errorf("sfi: verify: pc=%d: %s width %d (want 1 or 8)", pc, ins.Op, ins.Imm)
			}
		}
	}
	if img.Layout != nil {
		if err := img.Layout.Validate(); err != nil {
			return fmt.Errorf("sfi: verify: %w", err)
		}
	}
	for name, pc := range img.Funcs {
		if pc < 0 || pc >= n {
			return fmt.Errorf("sfi: verify: entry %q at %d outside code", name, pc)
		}
	}
	for _, pc := range img.CallTargets {
		if pc < 0 || pc >= n {
			return fmt.Errorf("sfi: verify: call target %d outside code", pc)
		}
	}
	if !img.Safe {
		return nil
	}
	return verifySafe(img)
}

func verifySafe(img *Image) error {
	// Landing points: every address control flow can reach other than
	// by falling through. LEA destinations are indirect-call candidates
	// and are landing points only if registered as call targets, which
	// landingPoints covers.
	landing := landingPoints(img)
	// The optimizer's claim, re-proven here: accesses whose addresses
	// are statically in-segment need no mask. A forged image marking an
	// unsafe access as "discharged" simply fails this analysis.
	staticOK := make(map[int]bool)
	staticEval(img, func(pc int, ins Instr, ok bool) {
		if ok {
			staticOK[pc] = true
		}
	})
	comp := img.Layout != nil
	for pc, ins := range img.Code {
		switch ins.Op {
		case PUSH, POP:
			return fmt.Errorf("sfi: verify: pc=%d: raw %s in safe image (rewriter expands these)", pc, ins.Op)
		case SANDBOX:
			if comp {
				// A flat mask can move an address across region
				// boundaries, laundering a denied access into an
				// allowed-looking one; compartmented images must use
				// the trapping region checks exclusively.
				return fmt.Errorf("sfi: verify: pc=%d: sandbox mask in compartmented image", pc)
			}
		case CHKR, CHKW, CHKS:
			if !comp {
				return fmt.Errorf("sfi: verify: pc=%d: %s in image without a compartment layout", pc, ins.Op)
			}
		case LD, LDB, ST, STB:
			if staticOK[pc] {
				continue // provably in-region (or in-segment) without a check
			}
			addrReg := ins.Rs1
			width := int64(8)
			if ins.Op == LDB || ins.Op == STB {
				width = 1
			}
			if ins.Imm != 0 {
				return fmt.Errorf("sfi: verify: pc=%d: protected %s must use zero displacement", pc, ins.Op)
			}
			if pc == 0 {
				return fmt.Errorf("sfi: verify: pc=0: memory access with no preceding check")
			}
			prev := img.Code[pc-1]
			if comp {
				// Loads need a CHKR of the same register and width;
				// stores a CHKW, or the stack-confining CHKS for the
				// 8-byte push expansion.
				okCheck := false
				switch ins.Op {
				case LD, LDB:
					okCheck = prev.Op == CHKR
				case ST:
					okCheck = prev.Op == CHKW || prev.Op == CHKS
				case STB:
					okCheck = prev.Op == CHKW
				}
				if !okCheck || prev.Rd != addrReg || prev.Imm != width {
					return fmt.Errorf("sfi: verify: pc=%d: %s not preceded by a matching region check of %s (width %d)", pc, ins.Op, regName(addrReg), width)
				}
			} else if prev.Op != SANDBOX || prev.Rd != addrReg {
				return fmt.Errorf("sfi: verify: pc=%d: %s not preceded by sandbox of %s", pc, ins.Op, regName(addrReg))
			}
			if landing[pc] {
				return fmt.Errorf("sfi: verify: pc=%d: jump target lands on protected %s, bypassing its check", pc, ins.Op)
			}
		case CALLR:
			if pc == 0 {
				return fmt.Errorf("sfi: verify: pc=0: indirect call with no preceding chkcall")
			}
			prev := img.Code[pc-1]
			if prev.Op != CHKCALL || prev.Rs1 != ins.Rs1 {
				return fmt.Errorf("sfi: verify: pc=%d: callr not preceded by chkcall of %s", pc, regName(ins.Rs1))
			}
			if landing[pc] {
				return fmt.Errorf("sfi: verify: pc=%d: jump target lands on callr, bypassing its chkcall", pc)
			}
		}
	}
	return nil
}

// Disassemble renders an image as readable assembly with addresses,
// entry-point markers and call-target annotations.
func Disassemble(img *Image) string {
	type mark struct {
		name  string
		entry bool
	}
	marks := make(map[int][]mark)
	names := make([]string, 0, len(img.Funcs))
	for name := range img.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pc := img.Funcs[name]
		marks[pc] = append(marks[pc], mark{name: name, entry: true})
	}
	targets := make(map[int]bool)
	for _, pc := range img.CallTargets {
		targets[pc] = true
	}
	out := fmt.Sprintf("; image %q  safe=%v  code=%d data=%dB symbols=%d\n",
		img.Name, img.Safe, len(img.Code), len(img.Data), len(img.Symbols))
	for i, sym := range img.Symbols {
		out += fmt.Sprintf("; sym%d = %s\n", i, sym)
	}
	for pc, ins := range img.Code {
		for _, m := range marks[pc] {
			out += fmt.Sprintf("%s:  ; entry\n", m.name)
		}
		t := ""
		if targets[pc] && len(marks[pc]) == 0 {
			t = "  ; call target"
		}
		out += fmt.Sprintf("%5d:  %s%s\n", pc, ins, t)
	}
	return out
}
