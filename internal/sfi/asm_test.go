package sfi

import (
	"strings"
	"testing"
)

func mustAssemble(t testing.TB, src string) *Image {
	t.Helper()
	img, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return img
}

func TestAssembleBasic(t *testing.T) {
	img := mustAssemble(t, `
.name demo
.func main
main:
    movi r1, 42
    mov  r0, r1
    ret
`)
	if img.Name != "demo" {
		t.Errorf("name = %q", img.Name)
	}
	if len(img.Code) != 3 {
		t.Fatalf("code len = %d", len(img.Code))
	}
	if img.Code[0].Op != MOVI || img.Code[0].Rd != 1 || img.Code[0].Imm != 42 {
		t.Errorf("ins0 = %v", img.Code[0])
	}
	if pc, ok := img.Funcs["main"]; !ok || pc != 0 {
		t.Errorf("Funcs = %v", img.Funcs)
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	img := mustAssemble(t, `
.name loops
.func main
main:
    movi r1, 10
loop:
    addi r1, r1, -1
    jnz r1, loop
    jmp done
done:
    ret
`)
	// loop label is at pc 1, done at pc 4.
	if img.Code[2].Op != JNZ || img.Code[2].Imm != 1 {
		t.Errorf("jnz = %v", img.Code[2])
	}
	if img.Code[3].Op != JMP || img.Code[3].Imm != 4 {
		t.Errorf("jmp = %v", img.Code[3])
	}
}

func TestAssembleMemOperands(t *testing.T) {
	img := mustAssemble(t, `
.name mem
.func main
main:
    ld  r1, [r2+16]
    ld  r3, [r2-8]
    st  [sp+0], r1
    ldb r4, [r2]
    stb [r2+1], r4
    ret
`)
	c := img.Code
	if c[0].Op != LD || c[0].Rs1 != 2 || c[0].Imm != 16 || c[0].Rd != 1 {
		t.Errorf("ld = %v", c[0])
	}
	if c[1].Imm != -8 {
		t.Errorf("negative offset = %v", c[1])
	}
	if c[2].Op != ST || c[2].Rs1 != RegSP || c[2].Rs2 != 1 {
		t.Errorf("st = %v", c[2])
	}
	if c[3].Imm != 0 {
		t.Errorf("bare mem operand = %v", c[3])
	}
}

func TestAssembleImportsAndCallk(t *testing.T) {
	img := mustAssemble(t, `
.name k
.import fs.prefetch
.import vm.page_owner
.func main
main:
    callk vm.page_owner
    callk fs.prefetch
    ret
`)
	if len(img.Symbols) != 2 || img.Symbols[0] != "fs.prefetch" {
		t.Fatalf("symbols = %v", img.Symbols)
	}
	if img.Code[0].Imm != 1 || img.Code[1].Imm != 0 {
		t.Errorf("callk indices = %v %v", img.Code[0], img.Code[1])
	}
}

func TestAssembleDataDirectives(t *testing.T) {
	img := mustAssemble(t, `
.name d
.data "AB"
.dataword 0x0102
.space 3
.func main
main:
    ret
`)
	want := []byte{'A', 'B', 2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	if len(img.Data) != len(want) {
		t.Fatalf("data = %v", img.Data)
	}
	for i := range want {
		if img.Data[i] != want[i] {
			t.Fatalf("data = %v, want %v", img.Data, want)
		}
	}
}

func TestAssembleLeaAndTargets(t *testing.T) {
	img := mustAssemble(t, `
.name ind
.func main
.target helper
main:
    lea r1, helper
    chkcall r1
    callr r1
    ret
helper:
    movi r0, 7
    ret
`)
	helperPC := img.Funcs["main"] + 4
	if img.Code[0].Op != LEA || img.Code[0].Imm != int64(helperPC) {
		t.Errorf("lea = %v, want target %d", img.Code[0], helperPC)
	}
	found := false
	for _, ct := range img.CallTargets {
		if ct == helperPC {
			found = true
		}
	}
	if !found {
		t.Errorf("call targets = %v, want %d", img.CallTargets, helperPC)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"reserved reg", ".func m\nm:\n mov r12, r1\n ret", "reserved"},
		{"reserved s0", ".func m\nm:\n mov s0, r1\n ret", "reserved"},
		{"unknown op", ".func m\nm:\n frob r1\n ret", "unknown instruction"},
		{"undefined label", ".func m\nm:\n jmp nowhere\n ret", "undefined label"},
		{"bad reg", ".func m\nm:\n mov r99, r1\n ret", "bad register"},
		{"no entry", "start:\n ret", "no entry points"},
		{"callk without import", ".func m\nm:\n callk fs.read\n ret", "without .import"},
		{"duplicate label", ".func m\nm:\n ret\nm:\n ret", "duplicate label"},
		{"operand count", ".func m\nm:\n add r1, r2\n ret", "wants 3 operands"},
		{"bad directive", ".bogus x\n.func m\nm:\n ret", "unknown directive"},
		{"func of undefined", ".func ghost\n.func m\nm:\n ret", "undefined label"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("Assemble err = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestCommentsStripped(t *testing.T) {
	img := mustAssemble(t, `
; full line comment
.name c // another comment style
.func main
main:
    movi r1, 1 ; trailing
    ret // trailing too
`)
	if len(img.Code) != 2 {
		t.Fatalf("code = %v", img.Code)
	}
}

func TestDataStringWithSemicolon(t *testing.T) {
	img := mustAssemble(t, `
.name c
.data "a;b"
.func main
main:
    ret
`)
	if string(img.Data) != "a;b" {
		t.Fatalf("data = %q, comment stripping broke quoted strings", img.Data)
	}
}

func TestLabelWithInstructionOnSameLine(t *testing.T) {
	img := mustAssemble(t, `
.name c
.func main
main: movi r0, 5
      ret
`)
	if len(img.Code) != 2 || img.Code[0].Op != MOVI {
		t.Fatalf("code = %v", img.Code)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := mustAssemble(t, `
.name rt
.import fs.prefetch
.data "xyz"
.func main
.target aux
main:
    movi r1, -7
    callk fs.prefetch
    lea r2, aux
    callr r2
    ret
aux:
    ret
`)
	dec, err := Decode(img.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Name != img.Name || len(dec.Code) != len(img.Code) ||
		string(dec.Data) != string(img.Data) || len(dec.Symbols) != 1 {
		t.Fatalf("round trip mismatch: %+v", dec)
	}
	for i := range img.Code {
		if dec.Code[i] != img.Code[i] {
			t.Fatalf("code[%d] = %v, want %v", i, dec.Code[i], img.Code[i])
		}
	}
	if dec.Funcs["main"] != img.Funcs["main"] {
		t.Fatal("entry points lost")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not an image")); err == nil {
		t.Fatal("garbage decoded")
	}
	img := mustAssemble(t, ".name x\n.func m\nm:\n ret")
	enc := img.Encode()
	if _, err := Decode(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated image decoded")
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestSignedRoundTrip(t *testing.T) {
	img := mustAssemble(t, ".name s\n.func m\nm:\n ret")
	signer := NewSigner([]byte("toolchain key"))
	signer.Sign(img)
	dec, err := DecodeSigned(img.EncodeSigned())
	if err != nil {
		t.Fatalf("DecodeSigned: %v", err)
	}
	if !signer.Verify(dec) {
		t.Fatal("signature did not survive the round trip")
	}
}

func TestSignatureDetectsTampering(t *testing.T) {
	img := mustAssemble(t, ".name s\n.func m\nm:\n movi r0, 1\n ret")
	signer := NewSigner([]byte("toolchain key"))
	signer.Sign(img)
	img.Code[0].Imm = 666 // tamper after signing
	if signer.Verify(img) {
		t.Fatal("tampered image verified")
	}
}

func TestSignatureKeyMatters(t *testing.T) {
	img := mustAssemble(t, ".name s\n.func m\nm:\n ret")
	NewSigner([]byte("attacker key")).Sign(img)
	if NewSigner([]byte("kernel key")).Verify(img) {
		t.Fatal("image signed under the wrong key verified")
	}
}

func TestDisassembleRoundReadable(t *testing.T) {
	img := mustAssemble(t, `
.name dis
.import fs.prefetch
.func main
main:
    movi r1, 3
    ld r2, [r1+8]
    callk fs.prefetch
    ret
`)
	s := Disassemble(img)
	for _, want := range []string{"main:", "movi r1, 3", "ld r2, [r1+8]", "callk sym0", "sym0 = fs.prefetch"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}
