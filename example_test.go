package vino_test

import (
	"fmt"

	vino "vino"
	"vino/internal/graft"
)

// ExampleKernel shows the Figure 1 flow: build a kernel, open a file,
// replace its read-ahead policy with a graft, and survive replacing it
// with one that misbehaves.
func ExampleKernel() {
	k := vino.NewKernel(vino.Config{})
	fsys := vino.NewFS(k, vino.NewDisk(vino.FujitsuDisk()), 256)
	fsys.Create("data", 16*vino.BlockSize, 100, false)

	k.SpawnProcess("app", 100, func(p *vino.Process) {
		of, err := fsys.Open(p.Thread, "data")
		if err != nil {
			panic(err)
		}
		// A benign graft: prefetch one block past every read.
		g, err := p.BuildAndInstall(of.RAPoint().Name, `
.name one-ahead
.import fs.prefetch
.func main
main:
    add r3, r1, r2
    ld r1, [r10+0]
    mov r2, r3
    movi r3, 4096
    callk fs.prefetch
    ret
`, graft.InstallOptions{})
		if err != nil {
			panic(err)
		}
		heap := g.VM().Heap()
		fd := int64(of.FD())
		for i := 0; i < 8; i++ {
			heap[i] = byte(uint64(fd) >> (8 * i))
		}
		buf := make([]byte, 512)
		if _, err := of.ReadAt(p.Thread, buf, 0); err != nil {
			panic(err)
		}
		st := of.RAPoint().Stats()
		fmt.Printf("benign graft: %d call, %d commit, %d abort\n", st.GraftedCalls, st.Commits, st.Aborts)

		// Swap in a graft that loops forever; the watchdog aborts it,
		// the kernel removes it, and the read still succeeds.
		k.Grafts.Remove(g)
		bad, _ := p.BuildAndInstall(of.RAPoint().Name, ".name evil\n.func main\nmain:\n jmp main\n", graft.InstallOptions{})
		if _, err := of.ReadAt(p.Thread, buf, 4*vino.BlockSize); err != nil {
			panic(err)
		}
		fmt.Printf("evil graft removed: %v\n", bad.Removed())
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	// Output:
	// benign graft: 1 call, 1 commit, 0 abort
	// evil graft removed: true
}

// ExampleBuildSafeGraft shows the toolchain rejecting what the loader
// would never run and the kernel refusing what the toolchain did not
// sign.
func ExampleBuildSafeGraft() {
	k := vino.NewKernel(vino.Config{})
	fsys := vino.NewFS(k, vino.NewDisk(vino.FujitsuDisk()), 64)
	fsys.Create("f", vino.BlockSize, 100, false)
	k.SpawnProcess("app", 100, func(p *vino.Process) {
		of, _ := fsys.Open(p.Thread, "f")
		// Signed by an attacker, not the kernel's toolchain key.
		forged, err := vino.BuildSafeGraft(".name x\n.func main\nmain:\n ret", nil)
		if err != nil {
			panic(err)
		}
		_, err = p.Install(of.RAPoint().Name, forged, vino.InstallOptions{})
		fmt.Println("unsigned image:", err != nil)

		// Built by the kernel's own signer: loads fine.
		good, err := vino.BuildSafeGraft(".name x\n.func main\nmain:\n movi r0, 0\n ret", k.Signer)
		if err != nil {
			panic(err)
		}
		_, err = p.Install(of.RAPoint().Name, good, vino.InstallOptions{})
		fmt.Println("signed image loads:", err == nil)
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	// Output:
	// unsigned image: true
	// signed image loads: true
}

// ExampleBuildOptimizedGraft shows the MiSFIT optimizer discharging
// every check of a constant-offset graft.
func ExampleBuildOptimizedGraft() {
	src := `
.name static
.func main
main:
    st [r10+64], r1
    ld r0, [r10+64]
    ret
`
	naive, _ := vino.BuildSafeGraft(src, nil)
	opt, _ := vino.BuildOptimizedGraft(src, nil)
	fmt.Printf("naive rewrite: %d instructions\n", len(naive.Code))
	fmt.Printf("optimized:     %d instructions\n", len(opt.Code))
	// Output:
	// naive rewrite: 7 instructions
	// optimized:     3 instructions
}
