// bench_test.go holds the wall-clock benchmark per paper table. The
// virtual-time reproduction of each table lives in internal/harness (and
// is printed by cmd/vinobench); these testing.B benchmarks measure what
// the *real implementation* costs on the host, path by path, so the
// shape claims can be checked against genuine measured time as well as
// the simulator's deterministic clock.
package vino_test

import (
	"fmt"
	"testing"
	"time"

	vino "vino"
	vfs "vino/internal/fs"
	"vino/internal/graft"
	"vino/internal/harness"
	"vino/internal/kernel"
	"vino/internal/lock"
	"vino/internal/sched"
	"vino/internal/sfi"
	"vino/internal/vmm"
)

// benchKernel builds a kernel tuned for wall-clock benching: zero
// virtual costs so host time reflects implementation work, not the
// simulated cost model.
func benchKernel() *kernel.Kernel {
	return kernel.New(kernel.Config{
		Timeslice:    time.Hour,
		ZeroTxnCosts: true,
		UnsafeGrafts: true,
	})
}

// runOnThread spawns a process that executes body(thread) and drives the
// scheduler to completion.
func runOnThread(b *testing.B, k *kernel.Kernel, body func(t *sched.Thread)) {
	b.Helper()
	k.SpawnProcess("bench", graft.Root, func(p *kernel.Process) { body(p.Thread) })
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func installBench(b *testing.B, k *kernel.Kernel, t *sched.Thread, point string, src string, safe bool) *graft.Installed {
	b.Helper()
	var img *sfi.Image
	var err error
	if safe {
		img, _, err = sfi.BuildSafe(src, k.Signer)
	} else {
		img, err = sfi.BuildUnsafe(src)
	}
	if err != nil {
		b.Fatal(err)
	}
	g, err := k.Grafts.Install(t, point, img, graft.InstallOptions{AllowUnsafe: !safe})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

const benchNullGraft = `
.name null
.func main
main:
    mov r0, r1
    ret
`

// BenchmarkTable3ReadAhead measures the compute-ra decision paths on the
// host clock.
func BenchmarkTable3ReadAhead(b *testing.B) {
	paths := []struct {
		name  string
		graft string
		safe  bool
	}{
		{"BasePath", "", false},
		{"VINOPath", "vino", false},
		{"NullPath", benchNullGraft, true},
		{"UnsafePath", benchRAGraft, false},
		{"SafePath", benchRAGraft, true},
		{"AbortPath", benchRAAbortGraft, true},
	}
	for _, pc := range paths {
		b.Run(pc.name, func(b *testing.B) {
			k := benchKernel()
			fsys := vfs.New(k, vfs.NewDisk(vfs.FujitsuM2694ESA()), 4096)
			fsys.Create("db", 12<<20, graft.Root, false)
			runOnThread(b, k, func(t *sched.Thread) {
				of, err := fsys.Open(t, "db")
				if err != nil {
					b.Fatal(err)
				}
				point := of.RAPoint()
				point.KeepOnAbort = true
				var g *graft.Installed
				if pc.graft != "" && pc.graft != "vino" {
					g = installBench(b, k, t, point.Name, pc.graft, pc.safe)
					heap := g.VM().Heap()
					pokeBench(heap, 0, 40*vfs.BlockSize)
					pokeBench(heap, 8, vfs.BlockSize)
					pokeBench(heap, 16, int64(of.FD()))
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					of.ResetPrefetchQueue()
					if pc.graft == "" {
						of.ComputeRABase(t, 0, vfs.BlockSize)
					} else {
						_, _ = point.Invoke(t, 0, vfs.BlockSize)
					}
				}
				b.StopTimer()
			})
		})
	}
}

const benchRAGraft = `
.name compute-ra
.import fs.prefetch
.func main
main:
    ld r3, [r10+0]
    ld r4, [r10+8]
    ld r1, [r10+16]
    mov r2, r3
    mov r3, r4
    callk fs.prefetch
    ret
`

const benchRAAbortGraft = `
.name compute-ra-abort
.import fs.prefetch
.func main
main:
    ld r3, [r10+0]
    ld r4, [r10+8]
    ld r1, [r10+16]
    mov r2, r3
    mov r3, r4
    callk fs.prefetch
    movi r9, 0
    div r0, r0, r9
    ret
`

// BenchmarkTable4PageEviction measures the two-level eviction decision.
func BenchmarkTable4PageEviction(b *testing.B) {
	for _, grafted := range []bool{false, true} {
		name := "DefaultVictim"
		if grafted {
			name = "GraftOverrules"
		}
		b.Run(name, func(b *testing.B) {
			k := benchKernel()
			v := vmm.New(k, b.N+600)
			v.BaseEvictCost = 0
			v.FaultLatency = time.Microsecond
			runOnThread(b, k, func(t *sched.Thread) {
				vas := v.NewVAS(t)
				hot := []int64{0, 1, 2}
				if grafted {
					g := installBench(b, k, t, vas.EvictPoint().Name, benchEvictGraft, true)
					heap := g.VM().Heap()
					pokeBench(heap, 0, int64(len(hot)))
					for i, h := range hot {
						pokeBench(heap, 8+8*i, h)
					}
				}
				for i := int64(0); i < 512; i++ {
					vas.Touch(t, i)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					h := hot[i%3]
					vas.Touch(t, h)
					v.MakeVictimNext(vas, h)
					b.StartTimer()
					v.EvictOne(t)
				}
				b.StopTimer()
			})
		})
	}
}

const benchEvictGraft = `
.name pick-eviction
.func main
main:
    mov r5, r1
    mov r14, r1
    call is_hot
    jz r0, keep
    movi r8, 0
    addi r6, r10, 1024
    ld r7, [r6+0]
    movi r9, -1
scan:
    cmplt r1, r8, r7
    jz r1, done
    movi r1, 3
    shl r1, r8, r1
    add r1, r1, r6
    ld r5, [r1+8]
    call is_hot
    jnz r0, next
    mov r9, r5
next:
    addi r8, r8, 1
    jmp scan
done:
    movi r1, -1
    cmpeq r1, r9, r1
    jnz r1, keep
    mov r0, r9
    ret
keep:
    mov r0, r14
    ret
is_hot:
    ld r2, [r10+0]
    movi r3, 0
ih_loop:
    cmplt r4, r3, r2
    jz r4, ih_no
    movi r0, 3
    shl r0, r3, r0
    add r0, r0, r10
    ld r0, [r0+8]
    cmpeq r0, r0, r5
    jnz r0, ih_yes
    addi r3, r3, 1
    jmp ih_loop
ih_no:
    movi r0, 0
    ret
ih_yes:
    movi r0, 1
    ret
`

// BenchmarkTable5Scheduling measures dispatch with and without the
// schedule-delegate graft in the dispatch path.
func BenchmarkTable5Scheduling(b *testing.B) {
	for _, mode := range []string{"BaseSwitch", "NullDelegate", "ScanDelegate"} {
		b.Run(mode, func(b *testing.B) {
			k := benchKernel()
			k.Sched.SwitchCost = 0
			k.EnableScheduleDelegation()
			ids := make([]int64, 64)
			for i := range ids {
				ids[i] = int64(1000 + i)
			}
			k.SetProcessList(ids)
			stop := false
			k.SpawnProcess("peer", graft.Root, func(p *kernel.Process) {
				for !stop {
					p.Thread.Yield()
				}
			})
			k.SpawnProcess("client", graft.Root, func(p *kernel.Process) {
				t := p.Thread
				defer func() { stop = true }()
				switch mode {
				case "NullDelegate":
					pt := k.DelegatePoint(t)
					installBench(b, k, t, pt.Name, benchNullGraft, true)
				case "ScanDelegate":
					pt := k.DelegatePoint(t)
					installBench(b, k, t, pt.Name, benchSchedGraft, true)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t.Yield()
				}
				b.StopTimer()
			})
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

const benchSchedGraft = `
.name schedule-delegate
.import sched.proc_count
.import sched.proc_id
.func main
main:
    mov r6, r1
    callk sched.proc_count
    mov r7, r0
    movi r8, 0
loop:
    cmplt r2, r8, r7
    jz r2, done
    mov r1, r8
    callk sched.proc_id
    addi r2, r10, 128
    st [r2+0], r0      ; examine the entry (through memory, as the paper's collection class does)
    addi r8, r8, 1
    jmp loop
done:
    mov r0, r6
    ret
`

// BenchmarkTable6Encryption measures the stream graft: the host cost of
// interpreting the 8 KB XOR loop, unprotected vs SFI-rewritten.
func BenchmarkTable6Encryption(b *testing.B) {
	src := `
.name encrypt
.func main
main:
    mov r2, r10
    addi r3, r10, 8192
    movi r4, 1024
    movi r5, 0x5A5A5A5A
loop:
    ld r6, [r2+0]
    xor r6, r6, r5
    st [r3+0], r6
    addi r2, r2, 8
    addi r3, r3, 8
    addi r4, r4, -1
    jnz r4, loop
    movi r0, 0
    ret
`
	for _, safe := range []bool{false, true} {
		name := "UnsafeGraft"
		if safe {
			name = "SafeGraft"
		}
		b.Run(name, func(b *testing.B) {
			var img *sfi.Image
			var err error
			if safe {
				img, _, err = sfi.BuildSafe(src, sfi.NewSigner([]byte("bench")))
			} else {
				img, err = sfi.BuildUnsafe(src)
			}
			if err != nil {
				b.Fatal(err)
			}
			vm, err := sfi.NewVM(img, sfi.Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(8192)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vm.Call("main"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable7Abort measures transaction abort against commit, with
// and without undo work and locks.
func BenchmarkTable7Abort(b *testing.B) {
	cases := []struct {
		name  string
		locks int
		undos int
		abort bool
	}{
		{"NullCommit", 0, 0, false},
		{"NullAbort", 0, 0, true},
		{"FullAbort2Locks8Undos", 2, 8, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			k := benchKernel()
			cls := &lock.Class{Name: "bench", Timeout: time.Second}
			locks := make([]*lock.Lock, c.locks)
			for i := range locks {
				locks[i] = k.Locks.NewLock(fmt.Sprintf("l%d", i), cls)
			}
			x := 0
			runOnThread(b, k, func(t *sched.Thread) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tx := k.Txns.Begin(t)
					for _, l := range locks {
						tx.AcquireLock(l, lock.Exclusive)
					}
					for j := 0; j < c.undos; j++ {
						tx.PushUndo("x", func() { x++ })
					}
					if c.abort {
						tx.Abort()
					} else {
						tx.Commit()
					}
				}
				b.StopTimer()
			})
			_ = x
		})
	}
}

// BenchmarkLockManagerAblation is the Figures 4/5 comparison on the host
// clock: decisions inline vs behind the Policy interface.
func BenchmarkLockManagerAblation(b *testing.B) {
	for _, policy := range []bool{false, true} {
		name := "Fig4HardCoded"
		if policy {
			name = "Fig5Encapsulated"
		}
		b.Run(name, func(b *testing.B) {
			k := benchKernel()
			cls := &lock.Class{Name: "ablate", Timeout: time.Second}
			if policy {
				cls.Policy = lock.ReaderPriority{}
			}
			l := k.Locks.NewLock("obj", cls)
			runOnThread(b, k, func(t *sched.Thread) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					l.Acquire(t, lock.Exclusive)
					_ = l.Release(t)
				}
				b.StopTimer()
			})
		})
	}
}

// BenchmarkSFIDensitySweep measures SFI overhead as a function of the
// graft's memory-access density (the §4.4 claim) on the host clock.
func BenchmarkSFIDensitySweep(b *testing.B) {
	for mem := 0; mem <= 8; mem += 4 {
		src := ".name density\n.func main\nmain:\n    movi r4, 64\nloop:\n"
		for i := 0; i < 4; i++ {
			src += "    add r5, r4, r4\n"
		}
		for i := 0; i < mem; i++ {
			src += fmt.Sprintf("    addi r6, r10, %d\n    st [r6+0], r5\n", 64+8*i)
		}
		src += "    addi r4, r4, -1\n    jnz r4, loop\n    ret\n"
		for _, safe := range []bool{false, true} {
			name := fmt.Sprintf("mem%d/unsafe", mem)
			if safe {
				name = fmt.Sprintf("mem%d/safe", mem)
			}
			b.Run(name, func(b *testing.B) {
				var img *sfi.Image
				var err error
				if safe {
					img, _, err = sfi.BuildSafe(src, nil)
				} else {
					img, err = sfi.BuildUnsafe(src)
				}
				if err != nil {
					b.Fatal(err)
				}
				vm, err := sfi.NewVM(img, sfi.Config{})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := vm.Call("main"); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkVirtualTables regenerates the deterministic virtual-time
// tables once per run so `go test -bench` output carries the paper
// comparison (the real workhorse is cmd/vinobench).
func BenchmarkVirtualTables(b *testing.B) {
	builders := []struct {
		name string
		fn   func() (*harness.Table, error)
	}{
		{"Table3", harness.ReadAheadTable},
		{"Table4", harness.PageEvictionTable},
		{"Table5", harness.SchedulingTable},
		{"Table6", harness.EncryptionTable},
	}
	for _, bd := range builders {
		b.Run(bd.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tbl, err := bd.fn()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Log("\n" + tbl.String())
				}
			}
		})
	}
	b.Run("Table7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl, err := harness.BuildAbortTable()
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Log("\n" + tbl.String())
			}
		}
	})
}

// BenchmarkSMPThroughput runs the fixed multi-CPU batch workload at
// each CPU count, light (independent compute) and heavy (one shared
// exclusive lock held across preemption). The reported metric is
// simulated aggregate throughput: light should scale near-linearly with
// CPUs, heavy should stay nearly flat — the cost of contention the SMP
// scheduler makes visible.
func BenchmarkSMPThroughput(b *testing.B) {
	for _, ncpu := range []int{1, 2, 4} {
		for _, variant := range []struct {
			name      string
			contended bool
		}{{"light", false}, {"heavy", true}} {
			b.Run(fmt.Sprintf("%s/ncpu=%d", variant.name, ncpu), func(b *testing.B) {
				var last *harness.SMPResult
				for i := 0; i < b.N; i++ {
					r, err := harness.SMPThroughput(ncpu, 32, variant.contended)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.ReportMetric(last.Throughput, "simops/vsec")
				b.ReportMetric(float64(last.LockWaits), "lockwaits")
			})
		}
	}
}

// BenchmarkCheckpoint measures one checkpoint capture on the large-fs
// crash workload — 4096 blocks of file state, a given fraction of it
// re-dirtied before each capture — under full-copy and incremental
// modes. The full-copy rows are the seed protocol's cost; incremental
// capture at 10% dirty must come in at least ~5x cheaper in both time
// and bytes/op (the captured block payload, reported as a metric).
func BenchmarkCheckpoint(b *testing.B) {
	const nblocks = 4096
	for _, mode := range []struct {
		name     string
		fullCopy bool
	}{
		{"full", true},
		{"incremental", false},
	} {
		for _, pct := range []int{1, 10, 100} {
			b.Run(fmt.Sprintf("%s/dirty=%d%%", mode.name, pct), func(b *testing.B) {
				k := kernel.New(kernel.Config{
					Timeslice:          time.Hour,
					ZeroTxnCosts:       true,
					CheckpointEvery:    time.Hour, // explicit captures only
					CheckpointFullCopy: mode.fullCopy,
				})
				fsys := vfs.New(k, vfs.NewDisk(vfs.FujitsuM2694ESA()), nblocks+64)
				fsys.Create("bench-db", nblocks*vfs.BlockSize, graft.Root, false)
				stride := 1
				if pct < 100 {
					stride = 100 / pct
				}
				writeBlocks := func(stride, phase int) {
					runOnThread(b, k, func(t *sched.Thread) {
						of, err := fsys.Open(t, "bench-db")
						if err != nil {
							b.Error(err)
							return
						}
						defer of.Close()
						buf := make([]byte, vfs.BlockSize)
						for blk := phase % stride; blk < nblocks; blk += stride {
							if _, err := of.WriteAt(t, buf, int64(blk)*vfs.BlockSize); err != nil {
								b.Error(err)
								return
							}
						}
					})
				}
				writeBlocks(1, 0) // the state: every block written once
				k.Checkpoint()    // base image
				writeBlocks(stride, 0)
				// The payload one capture carries in this mode, measured
				// on the real capture path.
				var payload int64
				if mode.fullCopy {
					payload = vfs.SnapshotBytes(fsys.CrashSnapshot())
				} else {
					payload = vfs.SnapshotBytes(fsys.CrashDelta(k.Crash.Gen() - 1))
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i > 0 {
						b.StopTimer()
						writeBlocks(stride, i) // fresh dirt, phase-shifted
						b.StartTimer()
					}
					k.Checkpoint()
				}
				b.StopTimer()
				b.ReportMetric(float64(payload), "bytes/op")
			})
		}
	}
}

// TestPublicFacade smoke-tests the root package aliases.
func TestPublicFacade(t *testing.T) {
	k := vino.NewKernel(vino.Config{ZeroTxnCosts: true})
	fsys := vino.NewFS(k, vino.NewDisk(vino.FujitsuDisk()), 64)
	fsys.Create("f", vino.BlockSize, 100, true)
	ran := false
	k.SpawnProcess("app", 100, func(p *vino.Process) {
		of, err := fsys.Open(p.Thread, "f")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		buf := make([]byte, 16)
		if _, err := of.ReadAt(p.Thread, buf, 0); err != nil {
			t.Errorf("ReadAt: %v", err)
			return
		}
		ran = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("facade workload did not run")
	}
}

func pokeBench(heap []byte, off int, v int64) {
	for i := 0; i < 8; i++ {
		heap[off+i] = byte(uint64(v) >> (8 * i))
	}
}
