package vino_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	vino "vino"
)

const retSeven = `
.name seven
.func main
main:
    movi r0, 7
    ret
`

func echoPoint(k *vino.Kernel, name string) *vino.GraftPoint {
	return k.Grafts.RegisterPoint(&vino.GraftPoint{
		Name:      name,
		Kind:      vino.Function,
		Privilege: vino.Local,
		Default:   func(t *vino.Thread, args []int64) (int64, error) { return -1, nil },
		Watchdog:  50 * time.Millisecond,
	})
}

// TestOptionsFeedConfig checks that each functional option lands in the
// built kernel.
func TestOptionsFeedConfig(t *testing.T) {
	plan := vino.NewFaultPlan(9, nil, 1)
	k := vino.New(
		vino.WithTrace(64),
		vino.WithSeed(9),
		vino.WithFaultPlan(plan),
		vino.WithTimeslice(5*time.Millisecond),
	)
	if k.Seed != 9 {
		t.Errorf("Seed = %d, want 9", k.Seed)
	}
	if k.Faults == nil || k.Faults.Plan() != plan {
		t.Error("fault plan not plumbed into the injector")
	}
	if !k.Faults.Armed() {
		t.Error("injector not armed")
	}
	if k.FaultHoardLock() == nil {
		t.Error("fault callables not registered alongside the plan")
	}
	if k.Trace == nil {
		t.Fatal("no trace buffer")
	}
}

// TestToolchainBuild covers the build modes and signer binding.
func TestToolchainBuild(t *testing.T) {
	k := vino.New()
	tc := vino.ToolchainFor(k)

	plain, err := tc.Build(retSeven, vino.BuildOptions{})
	if err != nil {
		t.Fatalf("plain build: %v", err)
	}
	opt, err := tc.Build(retSeven, vino.BuildOptions{Optimize: true})
	if err != nil {
		t.Fatalf("optimized build: %v", err)
	}
	comp, err := tc.Build(retSeven, vino.BuildOptions{Compartments: true})
	if err != nil {
		t.Fatalf("compartmented build: %v", err)
	}
	if comp.Layout == nil {
		t.Fatal("compartmented image carries no layout")
	}
	compOpt, err := tc.Build(retSeven, vino.BuildOptions{Compartments: true, Optimize: true})
	if err != nil {
		t.Fatalf("compartmented optimized build: %v", err)
	}
	raw, err := vino.Toolchain{}.Build(retSeven, vino.BuildOptions{Unsafe: true})
	if err != nil {
		t.Fatalf("unsafe build: %v", err)
	}
	foreign, err := vino.Toolchain{Signer: vino.NewSigner([]byte("other"))}.Build(retSeven, vino.BuildOptions{})
	if err != nil {
		t.Fatalf("foreign build: %v", err)
	}

	pt := echoPoint(k, "obj.fn")
	k.SpawnProcess("app", vino.Root, func(p *vino.Process) {
		for _, tcase := range []struct {
			name    string
			img     *vino.Image
			wantErr error // nil = install and invoke must succeed
		}{
			{"plain", plain, nil},
			{"optimized", opt, nil},
			{"compartmented", comp, nil},
			{"compartmented-optimized", compOpt, nil},
			{"unsafe", raw, vino.ErrNotSafe},
			{"foreign-signer", foreign, vino.ErrUnsigned},
		} {
			g, err := p.Install("obj.fn", tcase.img, vino.InstallOptions{})
			if tcase.wantErr != nil {
				if !errors.Is(err, tcase.wantErr) {
					t.Errorf("%s: install err = %v, want %v", tcase.name, err, tcase.wantErr)
				}
				continue
			}
			if err != nil {
				t.Errorf("%s: install: %v", tcase.name, err)
				continue
			}
			if res, err := pt.Invoke(p.Thread); err != nil || res != 7 {
				t.Errorf("%s: invoke = (%d, %v), want (7, nil)", tcase.name, res, err)
			}
			k.Grafts.Remove(g)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(k.Trace.Filter(vino.TraceGraftInstall)) == 0 {
		t.Error("no graft-install trace events")
	}
	if k.Trace.Total() == 0 || k.Trace.Dump() == "" {
		t.Error("trace query surface empty")
	}
}

// TestDeprecatedWrappersStillWork keeps the pre-redesign names alive.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	k := vino.NewKernel(vino.Config{TraceDepth: 32})
	img, err := vino.BuildSafeGraft(retSeven, k.Signer)
	if err != nil {
		t.Fatalf("BuildSafeGraft: %v", err)
	}
	opt, err := vino.BuildOptimizedGraft(retSeven, k.Signer)
	if err != nil {
		t.Fatalf("BuildOptimizedGraft: %v", err)
	}
	pt := echoPoint(k, "obj.fn")
	k.SpawnProcess("app", 100, func(p *vino.Process) {
		for _, im := range []*vino.Image{img, opt} {
			g, err := p.Install("obj.fn", im, vino.InstallOptions{})
			if err != nil {
				t.Errorf("install: %v", err)
				return
			}
			if res, err := pt.Invoke(p.Thread); err != nil || res != 7 {
				t.Errorf("invoke = (%d, %v), want (7, nil)", res, err)
			}
			k.Grafts.Remove(g)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultSurfaceRoundTrip exercises the fault-plan surface end to
// end: parse classes, derive a plan, inspect it, run chaos, compare
// determinism artifacts — all through the public API.
func TestFaultSurfaceRoundTrip(t *testing.T) {
	classes, err := vino.ParseFaultClasses("disk,graft")
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 {
		t.Fatalf("classes = %v", classes)
	}
	if _, err := vino.ParseFaultClasses("bogus"); err == nil {
		t.Fatal("bogus class accepted")
	}
	plan := vino.NewFaultPlan(4, classes, 2)
	if len(plan.Rules) != 4 {
		t.Fatalf("plan has %d rules, want 4", len(plan.Rules))
	}
	if got := plan.Classes(); len(got) != 2 {
		t.Fatalf("plan classes = %v", got)
	}
	for _, key := range []string{
		vino.FaultGraftLoop, vino.FaultGraftWildStore, vino.FaultGraftHoard,
		vino.FaultGraftBlowout, vino.FaultGraftAbortUndo,
	} {
		if vino.FaultGraftSource(key) == "" {
			t.Errorf("no graft source for %q", key)
		}
	}

	cfg := vino.ChaosConfig{Seed: 4, Classes: classes, Iterations: 16}
	a, err := vino.RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := vino.RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Survived() {
		t.Fatalf("did not survive: %v (follow-up ok: %v)", a.Violations, a.FollowupOK)
	}
	if a.TraceDump != b.TraceDump {
		t.Fatal("same seed produced different chaos traces")
	}
	if !errors.Is(vino.ErrFaultInjected, vino.ErrFaultInjected) {
		t.Fatal("fault sentinel identity broken")
	}
}

// TestSMPSurface covers the multi-CPU option and the fault-plan
// interchange helpers.
func TestSMPSurface(t *testing.T) {
	k := vino.New(vino.WithCPUs(4))
	if got := k.NumCPUs(); got != 4 {
		t.Fatalf("NumCPUs = %d, want 4", got)
	}
	if got := vino.New().NumCPUs(); got != 1 {
		t.Fatalf("default NumCPUs = %d, want 1", got)
	}

	ext := vino.FaultExtendedClasses()
	if len(ext) != len(vino.FaultClasses())+1 || ext[len(ext)-1] != vino.FaultNetIO {
		t.Fatalf("extended classes = %v", ext)
	}

	plan := vino.NewFaultPlan(11, ext, 2)
	back, err := vino.DecodeFaultPlan(plan.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Encode() != plan.Encode() {
		t.Fatal("fault plan did not round-trip through its text form")
	}
}

// badSrc spins until the watchdog aborts the invocation.
const badSrc = `
.name bad
.func main
main:
    jmp main
`

// TestGuardSurface covers the supervisor's public face: WithGuardPolicy
// arms it, the escalation ladder runs (quarantine, base-path fallback,
// probation, expulsion), and Guard.Report() exposes the health ledger.
func TestGuardSurface(t *testing.T) {
	pol := vino.DefaultGuardPolicy()
	k := vino.New(vino.WithTrace(128), vino.WithGuardPolicy(pol))
	if k.Guard == nil {
		t.Fatal("WithGuardPolicy did not arm the supervisor")
	}
	pt := echoPoint(k, "obj.fn")
	k.SpawnProcess("app", vino.Root, func(p *vino.Process) {
		g, err := p.BuildAndInstall("obj.fn", badSrc, vino.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		for i := 0; i < pol.QuarantineStreak; i++ {
			if _, err := pt.Invoke(p.Thread); err == nil {
				t.Error("misbehaving invoke did not abort")
			}
		}
		if st, _ := k.Guard.StateOf(g.GuardKey()); st != vino.GuardQuarantined {
			t.Errorf("state = %v, want quarantined", st)
		}
		// Quarantined: the default serves the call, no error.
		if res, err := pt.Invoke(p.Thread); err != nil || res != -1 {
			t.Errorf("quarantined invoke = (%d, %v), want (-1, nil)", res, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	rep := k.Guard.Report()
	if len(rep.Grafts) != 1 || rep.Quarantines() != 1 {
		t.Fatalf("report = %+v", rep)
	}
	h := rep.Grafts[0]
	if h.AbortsByCause[vino.CauseWatchdog] != int64(pol.QuarantineStreak) {
		t.Errorf("watchdog bucket = %v", h.AbortsByCause)
	}
	if len(k.Trace.Filter(vino.TraceGraftQuarantine)) != 1 {
		t.Error("no graft-quarantine trace event")
	}
}

// TestChaosCampaignSurface exercises the regrouped chaos family —
// run, fingerprint, minimize, campaign — through the public API, and
// keeps the deprecated ChaosSignature wrapper agreeing with its
// canonical name.
func TestChaosCampaignSurface(t *testing.T) {
	cfg := vino.ChaosConfig{Seed: 7, Iterations: 16, Extended: true, Crash: true}
	rep, err := vino.RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Survived() {
		t.Fatalf("did not survive: %v", rep.Violations)
	}
	if got := vino.ChaosFailureSignature(rep); got != "" {
		t.Errorf("surviving run has failure signature %q", got)
	}
	if vino.ChaosSignature(rep) != vino.ChaosFailureSignature(rep) {
		t.Error("deprecated ChaosSignature disagrees with ChaosFailureSignature")
	}
	runSig := vino.ChaosRunSignature(rep)
	if runSig == "" || !strings.HasPrefix(runSig, "ok ") {
		t.Errorf("run signature = %q, want an ok-verdict fingerprint", runSig)
	}

	// Minimize a surviving run's containment footprint.
	res, err := vino.MinimizeChaosTo(cfg, vino.ChaosRunSignature)
	if err != nil {
		t.Fatalf("MinimizeChaosTo: %v", err)
	}
	if res.Signature != runSig {
		t.Errorf("minimized to %q, want %q", res.Signature, runSig)
	}
	check, err := vino.RunChaos(vino.ChaosConfig{Plan: res.Plan, Iterations: 16, Extended: true, Crash: true})
	if err != nil {
		t.Fatal(err)
	}
	if vino.ChaosRunSignature(check) != runSig {
		t.Error("minimal plan does not reproduce the run signature")
	}

	// A small campaign through the re-exports, corpus round-tripped
	// through a directory.
	camp, err := vino.RunCampaign(vino.CampaignConfig{
		Seed: 3, Runs: 8, Shards: 4, Workers: 2, Iterations: 8,
		Extended: true, Crash: true, MaxCorpus: 2,
	})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if camp.DirtyRuns != 0 {
		t.Fatalf("campaign audit dirty:\n%s", camp.Summary())
	}
	if len(camp.Novel) == 0 || len(camp.Corpus) == 0 {
		t.Fatalf("campaign found %d signatures, %d corpus entries", len(camp.Novel), len(camp.Corpus))
	}
	dir := t.TempDir()
	if err := camp.WriteCorpus(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := vino.LoadCampaignCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(camp.Corpus) {
		t.Fatalf("loaded %d entries, wrote %d", len(entries), len(camp.Corpus))
	}
}
