// Readahead: the paper's §4.1 motivating application — a database-style
// random reader with advance knowledge of its access pattern. It runs
// the same workload twice, with and without a read-ahead graft, and
// prints the stall time the graft hides plus the §4.1.1 win condition.
package main

import (
	"fmt"
	"log"
	"time"

	vino "vino"
	"vino/internal/graft"
)

// The §4.1.2 graft: a memory buffer is shared between the application
// and the graft; the app deposits the (offset, size) of its *next* read
// there, and the graft turns it into a prefetch request.
const raGraft = `
.name app-directed-ra
.import fs.prefetch
.func main
main:
    ld r3, [r10+0]    ; announced next offset
    ld r4, [r10+8]    ; announced next size
    jz r4, done
    ld r1, [r10+16]   ; fd
    mov r2, r3
    mov r3, r4
    callk fs.prefetch
    ret
done:
    movi r0, 0
    ret
`

const (
	fileSize  = 12 << 20 // the paper's 12 MB file
	reads     = 300      // the paper uses 3000; 300 keeps the demo snappy
	computeUS = 250      // think time between reads
)

func pattern() []int64 {
	out := make([]int64, reads)
	state := int64(424242)
	nBlocks := int64(fileSize / vino.BlockSize)
	for i := range out {
		state = (state*1103515245 + 12345) & 0x7FFFFFFF
		out[i] = state % nBlocks
	}
	return out
}

func run(useGraft bool) (stall, elapsed time.Duration, faults int64) {
	k := vino.NewKernel(vino.Config{})
	fsys := vino.NewFS(k, vino.NewDisk(vino.FujitsuDisk()), 8192)
	fsys.Create("db", fileSize, 100, false)
	blocks := pattern()
	k.SpawnProcess("db-app", 100, func(p *vino.Process) {
		of, err := fsys.Open(p.Thread, "db")
		if err != nil {
			log.Fatal(err)
		}
		var g *vino.Installed
		if useGraft {
			g, err = p.BuildAndInstall(of.RAPoint().Name, raGraft, graft.InstallOptions{})
			if err != nil {
				log.Fatal(err)
			}
			poke(g, 16, int64(of.FD()))
		}
		buf := make([]byte, vino.BlockSize)
		start := k.Clock.Now()
		for i, b := range blocks {
			if g != nil {
				if i+1 < len(blocks) {
					poke(g, 0, blocks[i+1]*vino.BlockSize)
					poke(g, 8, vino.BlockSize)
				} else {
					poke(g, 8, 0)
				}
			}
			if _, err := of.ReadAt(p.Thread, buf, b*vino.BlockSize); err != nil {
				log.Fatal(err)
			}
			p.Thread.Charge(computeUS * time.Microsecond) // compute on the block
		}
		stall = of.StallTime
		elapsed = k.Clock.Now() - start
		faults = of.SyncStalls
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	return
}

func poke(g *vino.Installed, off int, v int64) {
	heap := g.VM().Heap()
	for i := 0; i < 8; i++ {
		heap[off+i] = byte(uint64(v) >> (8 * i))
	}
}

func main() {
	fmt.Printf("workload: %d random %d-byte reads of a %d MB file, %d us compute per block\n\n",
		reads, vino.BlockSize, fileSize>>20, computeUS)
	s0, e0, f0 := run(false)
	fmt.Printf("default policy:    elapsed %8.1f ms, stalled %8.1f ms, %d synchronous misses\n",
		ms(e0), ms(s0), f0)
	s1, e1, f1 := run(true)
	fmt.Printf("read-ahead graft:  elapsed %8.1f ms, stalled %8.1f ms, %d synchronous misses\n",
		ms(e1), ms(s1), f1)
	fmt.Printf("\nthe graft hid %.1f ms of disk stall (%.0f us per read)\n",
		ms(s0-s1), float64(s0-s1)/float64(reads)/float64(time.Microsecond))
	fmt.Println("\nthe s4.1.1 win condition: the application wins when its compute time per")
	fmt.Println("read exceeds the graft's safe-path cost (~110 us here, 107 us in the paper);")
	fmt.Printf("at %d us of compute the grafted run finished %.1f ms sooner.\n", computeUS, ms(e0-e1))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
