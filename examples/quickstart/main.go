// Quickstart: the paper's Figure 1 flow — look up a graft point on an
// open file, replace its read-ahead policy with your own code, and watch
// the kernel protect itself when the graft misbehaves.
package main

import (
	"fmt"
	"log"

	vino "vino"
	"vino/internal/graft"
)

// graftSrc is GIR assembly: the toolchain (the MiSFIT analog) assembles
// it, inserts the SFI sandboxing instructions, verifies and signs it.
// This graft prefetches the block right after every read — a simple
// "one block ahead even on random access" policy.
const graftSrc = `
.name my-readahead
.import fs.prefetch
.func main
main:
    ; args: r1 = read offset, r2 = read size
    add r3, r1, r2    ; next byte after this read
    ld r1, [r10+0]    ; fd, stashed in the shared buffer by the app
    mov r2, r3
    movi r3, 4096
    callk fs.prefetch ; ask for one block starting there
    ret
`

func main() {
	// A kernel: virtual clock, preemptible scheduler, lock manager,
	// transaction manager, graft registry.
	k := vino.NewKernel(vino.Config{})
	fsys := vino.NewFS(k, vino.NewDisk(vino.FujitsuDisk()), 4096)
	fsys.Create("data", 64*vino.BlockSize, 100, false)

	k.SpawnProcess("app", 100, func(p *vino.Process) {
		of, err := fsys.Open(p.Thread, "data")
		if err != nil {
			log.Fatal(err)
		}
		// Figure 1: obtain the graft point handle from the namespace...
		point := of.RAPoint()
		fmt.Printf("graft point: %s (privilege: local)\n", point.Name)

		// ...and replace the function there. BuildAndInstall runs the
		// full toolchain; the loader checks the signature, the SFI
		// invariants, and links the import against the graft-callable
		// list.
		g, err := p.BuildAndInstall(point.Name, graftSrc, graft.InstallOptions{})
		if err != nil {
			log.Fatal(err)
		}
		// The app stashes the descriptor in the shared buffer (the
		// graft's heap) so the graft can name the file.
		heap := g.VM().Heap()
		fd := int64(of.FD())
		for i := 0; i < 8; i++ {
			heap[i] = byte(uint64(fd) >> (8 * i))
		}

		// Every read now runs the graft inside a transaction.
		buf := make([]byte, 512)
		for _, off := range []int64{0, 10 * vino.BlockSize, 20 * vino.BlockSize} {
			if _, err := of.ReadAt(p.Thread, buf, off); err != nil {
				log.Fatal(err)
			}
		}
		st := point.Stats()
		fmt.Printf("after 3 reads: %d grafted calls, %d commits, %d aborts\n",
			st.GraftedCalls, st.Commits, st.Aborts)
		fmt.Printf("prefetches queued by the graft: %d\n", of.PrefetchQueued)

		// Now the disaster case: replace it with a graft that loops
		// forever. The watchdog aborts it, the undo stack rolls back its
		// changes, the graft is removed, and reads keep working.
		k.Grafts.Remove(g)
		bad, err := p.BuildAndInstall(point.Name, ".name evil\n.func main\nmain:\n jmp main\n", graft.InstallOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := of.ReadAt(p.Thread, buf, 30*vino.BlockSize); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("looping graft installed, invoked, and survived: removed=%v\n", bad.Removed())
		fmt.Printf("kernel is fine; total virtual time: %v\n", k.Clock.Now())
	})

	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	for _, line := range k.Log() {
		fmt.Println("kernel log:", line)
	}
}
