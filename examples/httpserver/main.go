// Httpserver: the paper's Figure 2 — dropping an entire service into
// the kernel with an event graft. A handler is added to the TCP port 80
// connection event; each arriving connection spawns a worker thread that
// runs the handler inside a transaction. A second, buggy handler on
// port 8080 shows the failure mode: its partial response is undone and
// it is removed, while port 80 keeps serving.
package main

import (
	"fmt"
	"log"

	vino "vino"
	"vino/internal/graft"
	"vino/internal/resource"
)

// A minimal in-kernel HTTP server: read the request, answer 200 with a
// canned body, close. (Real VINO put full HTTP and NFS servers here.)
const httpGraft = `
.name http-server
.import net.read
.import net.write
.import net.close
.data "HTTP/1.0 200 OK\r\nServer: vino-graft\r\n\r\nhello from ring 0 (simulated)\n"
.func main
main:
    mov r6, r1          ; connection id
    addi r2, r10, 512   ; request buffer in our heap
    movi r3, 256
    callk net.read
    mov r1, r6
    mov r2, r10         ; the canned response from the data section
    movi r3, 69
    callk net.write
    mov r1, r6
    callk net.close
    ret
`

// The buggy service: writes half a response, then dereferences junk.
const buggyGraft = `
.name buggy-server
.import net.write
.data "HTTP/1.0 500 oops"
.func main
main:
    mov r6, r1
    mov r2, r10
    movi r3, 17
    callk net.write
    movi r9, 0
    div r0, r0, r9     ; trap: the transaction aborts, the write is undone
    ret
`

func main() {
	k := vino.NewKernel(vino.Config{})
	n := vino.NewNet(k)
	web := n.Listen("tcp", 80)
	buggy := n.Listen("tcp", 8080)
	fmt.Printf("event graft points: %s, %s\n\n", web.Point().Name, buggy.Point().Name)

	k.SpawnProcess("webmaster", 100, func(p *vino.Process) {
		opts := graft.InstallOptions{Transfer: map[resource.Kind]int64{resource.Memory: 16 << 10}}
		if _, err := p.BuildAndInstall(web.Point().Name, httpGraft, opts); err != nil {
			log.Fatal(err)
		}
		g2, err := p.BuildAndInstall(buggy.Point().Name, buggyGraft, opts)
		if err != nil {
			log.Fatal(err)
		}

		for i := 0; i < 3; i++ {
			conn, err := n.Connect(k.Sched, "tcp", 80, []byte("GET / HTTP/1.0\r\n\r\n"))
			if err != nil {
				log.Fatal(err)
			}
			for j := 0; j < 20 && !conn.Closed(); j++ {
				p.Thread.Yield()
			}
			fmt.Printf("GET / -> %q\n", firstLine(conn.Response()))
		}

		conn, err := n.Connect(k.Sched, "tcp", 8080, []byte("GET /crash HTTP/1.0\r\n\r\n"))
		if err != nil {
			log.Fatal(err)
		}
		for j := 0; j < 20; j++ {
			p.Thread.Yield()
		}
		fmt.Printf("\nbuggy service on :8080 -> %d response bytes (partial write undone)\n", len(conn.Response()))
		fmt.Printf("buggy handler removed: %v; port 80 still serving:\n", g2.Removed())

		conn2, _ := n.Connect(k.Sched, "tcp", 80, []byte("GET /again HTTP/1.0\r\n\r\n"))
		for j := 0; j < 20 && !conn2.Closed(); j++ {
			p.Thread.Yield()
		}
		fmt.Printf("GET /again -> %q\n", firstLine(conn2.Response()))
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	st := n.Stats()
	fmt.Printf("\nnetwork stats: %d connections, %d bytes out\n", st.Connections, st.BytesOut)
}

func firstLine(b []byte) string {
	for i := 0; i+1 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}
