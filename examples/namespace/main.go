// Namespace: the paper's taxonomy names "name resolution" as a Black
// Box graft. This example gives one user a chroot-style view of the
// file system by grafting a path translator onto the per-user
// resolution point: every lookup the jailed user makes is prefixed with
// "jail/", while other users see the real namespace — a malicious or
// buggy translator can only ever hurt the user who installed it
// (rule 8).
package main

import (
	"fmt"
	"log"

	vino "vino"
	"vino/internal/graft"
)

// The translator graft: copy "jail/" and then the requested path into
// the output buffer; return the new length. Protocol: input length at
// heap+504, input bytes at heap+512, output at heap+1024.
const chrootGraft = `
.name chroot
.data "jail/"
.func main
main:
    mov r2, r10
    addi r3, r10, 1024
    movi r4, 5
pfx:
    ldb r5, [r2+0]
    stb [r3+0], r5
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, -1
    jnz r4, pfx
    addi r2, r10, 512
    mov r4, r1
cp:
    jz r4, done
    ldb r5, [r2+0]
    stb [r3+0], r5
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, -1
    jmp cp
done:
    addi r0, r1, 5
    ret
`

func main() {
	k := vino.NewKernel(vino.Config{})
	fsys := vino.NewFS(k, vino.NewDisk(vino.FujitsuDisk()), 256)
	if err := fsys.Mkdir("jail", vino.Root); err != nil {
		log.Fatal(err)
	}
	fsys.Create("passwd", vino.BlockSize, vino.Root, true)
	fsys.Create("jail/passwd", vino.BlockSize, vino.Root, true)

	open := func(p *vino.Process, who string) {
		of, err := fsys.OpenPath(p.Thread, "passwd")
		if err != nil {
			log.Fatalf("%s: %v", who, err)
		}
		fmt.Printf("%-8s opened %q -> file %q\n", who, "passwd", of.File().Name)
		of.Close()
	}

	k.SpawnProcess("jailed", 100, func(p *vino.Process) {
		point := fsys.ResolvePoint(p.Thread)
		if _, err := p.BuildAndInstall(point.Name, chrootGraft, graft.InstallOptions{}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("installed translator at %s\n", point.Name)
		open(p, "jailed")
	})
	k.SpawnProcess("free", 101, func(p *vino.Process) {
		p.Thread.Yield()
		open(p, "free")
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nflight recorder:")
	fmt.Print(k.Trace.Dump())
}
