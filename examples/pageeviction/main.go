// Pageeviction: the paper's §4.2 scenario — an application with a 2 MB
// footprint of which a few pages are performance-critical. Under memory
// pressure the default global policy evicts whatever is least recently
// used, including the hot pages; a page-eviction graft steers eviction
// to cold pages instead. The example reports faults on the hot pages
// with and without the graft.
package main

import (
	"fmt"
	"log"

	vino "vino"
	"vino/internal/graft"
)

// The graft: the app lists its hot pages in the shared buffer (count at
// heap+0, vpns after); the kernel publishes eviction candidates at
// heap+1024 under the page-list lock. If the global victim is hot,
// return the last cold candidate instead.
const evictGraft = `
.name protect-hot-pages
.func main
main:
    mov r5, r1
    mov r14, r1
    call is_hot
    jz r0, keep
    movi r8, 0
    addi r6, r10, 1024
    ld r7, [r6+0]
    movi r9, -1
scan:
    cmplt r1, r8, r7
    jz r1, done
    movi r1, 3
    shl r1, r8, r1
    add r1, r1, r6
    ld r5, [r1+8]
    call is_hot
    jnz r0, next
    mov r9, r5
next:
    addi r8, r8, 1
    jmp scan
done:
    movi r1, -1
    cmpeq r1, r9, r1
    jnz r1, keep
    mov r0, r9
    ret
keep:
    mov r0, r14
    ret
is_hot:
    ld r2, [r10+0]
    movi r3, 0
ih_loop:
    cmplt r4, r3, r2
    jz r4, ih_no
    movi r0, 3
    shl r0, r3, r0
    add r0, r0, r10
    ld r0, [r0+8]
    cmpeq r0, r0, r5
    jnz r0, ih_yes
    addi r3, r3, 1
    jmp ih_loop
ih_no:
    movi r0, 0
    ret
ih_yes:
    movi r0, 1
    ret
`

const (
	frames    = 256 // physical memory: 1 MB
	footprint = 512 // the app's 2 MB working set, in pages
	hotCount  = 4   // performance-critical pages
	rounds    = 6   // pressure rounds
)

func run(useGraft bool) (hotFaults, totalFaults int64) {
	k := vino.NewKernel(vino.Config{})
	v := vino.NewVMM(k, frames)
	k.SpawnProcess("app", 100, func(p *vino.Process) {
		vas := v.NewVAS(p.Thread)
		hot := make([]int64, hotCount)
		for i := range hot {
			hot[i] = int64(i)
		}
		if useGraft {
			g, err := p.BuildAndInstall(vas.EvictPoint().Name, evictGraft, graft.InstallOptions{})
			if err != nil {
				log.Fatal(err)
			}
			heap := g.VM().Heap()
			poke(heap, 0, int64(len(hot)))
			for i, h := range hot {
				poke(heap, 8+8*i, h)
			}
		}
		// The access pattern: every round touches the hot pages, then
		// sweeps a different third of the cold range (more pages than
		// fit in memory, forcing eviction).
		for r := 0; r < rounds; r++ {
			for _, h := range hot {
				before := vas.Faults
				vas.Touch(p.Thread, h)
				if vas.Faults > before {
					hotFaults++
				}
			}
			lo := int64(hotCount) + int64(r%3)*footprint/3
			for i := lo; i < lo+footprint/3; i++ {
				vas.Touch(p.Thread, i)
			}
		}
		totalFaults = vas.Faults
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	return
}

func poke(heap []byte, off int, v int64) {
	for i := 0; i < 8; i++ {
		heap[off+i] = byte(uint64(v) >> (8 * i))
	}
}

func main() {
	fmt.Printf("physical memory %d pages; app touches %d hot + %d cold pages over %d rounds\n\n",
		frames, hotCount, footprint, rounds)
	h0, t0 := run(false)
	fmt.Printf("default eviction:  %3d hot-page faults (of %d total) — each costs ~18 ms\n", h0, t0)
	h1, t1 := run(true)
	fmt.Printf("eviction graft:    %3d hot-page faults (of %d total)\n", h1, t1)
	saved := float64(h0-h1) * 18.0
	fmt.Printf("\nthe graft avoided %d hot-page faults, saving ~%.0f ms of stall;\n", h0-h1, saved)
	fmt.Println("per s4.2.2 it may disagree with the default victim ~57 times per avoided")
	fmt.Println("fault before the overhead outweighs the benefit.")
}
