// Misbehavior: a rogues' gallery walking through Table 1 of the paper —
// each rule for grafting, the attack that motivates it, and the
// mechanism that enforces it. Companion to cmd/vinosim (which runs the
// dynamic scenarios); this example focuses on the install-time rules and
// prints a rule-by-rule scorecard.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	vino "vino"
)

type check struct {
	rule string
	what string
	ok   bool
	note string
}

func main() {
	var checks []check
	add := func(rule, what string, ok bool, note string) {
		checks = append(checks, check{rule, what, ok, note})
	}

	k := vino.New()
	point := k.Grafts.RegisterPoint(&vino.GraftPoint{
		Name:      "obj.fn",
		Kind:      vino.Function,
		Privilege: vino.Local,
		Default:   func(t *vino.Thread, args []int64) (int64, error) { return -1, nil },
		Watchdog:  50 * time.Millisecond,
	})
	k.Grafts.RegisterPoint(&vino.GraftPoint{
		Name:      "security.enforce",
		Kind:      vino.Function,
		Privilege: vino.Restricted,
		Default:   func(t *vino.Thread, args []int64) (int64, error) { return 0, nil },
	})
	k.Grafts.RegisterPoint(&vino.GraftPoint{
		Name:      "vm.global-policy",
		Kind:      vino.Function,
		Privilege: vino.Global,
		Default:   func(t *vino.Thread, args []int64) (int64, error) { return 0, nil },
	})
	contested := k.Locks.NewLock("contested", &vino.LockClass{Name: "demo", Timeout: 20 * time.Millisecond})
	k.Grafts.RegisterCallable("demo.lock", func(ctx *vino.Ctx, args [5]int64) (int64, error) {
		ctx.Txn.AcquireLock(contested, vino.Exclusive)
		return 0, nil
	})

	k.SpawnProcess("attacker", 100, func(p *vino.Process) {
		// Rule 1+9: preemptible grafts, forward progress.
		g, err := p.BuildAndInstall("obj.fn", vino.FaultGraftSource(vino.FaultGraftLoop), vino.InstallOptions{})
		if err != nil {
			log.Fatal(err)
		}
		res, ierr := point.Invoke(p.Thread)
		add("1,9", "infinite-loop graft", res == -1 && ierr != nil && g.Removed(),
			"watchdog abort, default result, graft removed")

		// Rule 2: lock hoarding (run a contender alongside).
		g2, err := p.BuildAndInstall("obj.fn", `
.name hoard
.import demo.lock
.func main
main:
    callk demo.lock
spin:
    jmp spin
`, vino.InstallOptions{})
		if err != nil {
			log.Fatal(err)
		}
		got := false
		k.Sched.Spawn("contender", func(t *vino.Thread) {
			t.Charge(time.Millisecond)
			contested.Acquire(t, vino.Exclusive)
			got = true
			_ = contested.Release(t)
		})
		_, ierr = point.Invoke(p.Thread)
		for i := 0; i < 50 && !got; i++ {
			p.Thread.Yield()
		}
		var te *vino.LockTimeoutError
		add("2", "lock(resourceA); while(1)", errors.As(ierr, &te) && got && g2.Removed(),
			"contention time-out aborted the holder; contender proceeded")

		// Rule 3: illegal memory access contained by SFI.
		g3, err := p.BuildAndInstall("obj.fn", `
.name scribble
.func main
main:
    movi r1, 0
    movi r2, 0xFF
    stb [r1+0], r2
    movi r0, 0
    ret
`, vino.InstallOptions{})
		if err != nil {
			log.Fatal(err)
		}
		km := g3.VM().KernelMemory()
		for i := range km {
			km[i] = 0x77
		}
		_, _ = point.Invoke(p.Thread)
		clean := true
		for _, b := range km {
			if b != 0x77 {
				clean = false
			}
		}
		k.Grafts.Remove(g3)
		add("3", "store to kernel address 0", clean, "SFI masked the address into the graft segment")

		// Rules 4+7: calling functions not on the graft-callable list.
		_, err = p.BuildAndInstall("obj.fn", `
.name stealer
.import fs.read_private_data
.func main
main:
    callk fs.read_private_data
    ret
`, vino.InstallOptions{})
		add("4,7", "import of a non-callable function", errors.Is(err, vino.ErrNotCallable),
			"rejected by the dynamic linker")

		// Rule 5: restricted points.
		_, err = p.BuildAndInstall("security.enforce", ".name takeover\n.func main\nmain:\n ret", vino.InstallOptions{})
		add("5", "graft on the security module", errors.Is(err, vino.ErrRestrictedPoint),
			"restricted points are never graftable")

		// Rule 6: unsigned code.
		raw, err := vino.Toolchain{}.Build(".name raw\n.func main\nmain:\n ret", vino.BuildOptions{Unsafe: true})
		if err != nil {
			log.Fatal(err)
		}
		_, err = p.Install("obj.fn", raw, vino.InstallOptions{})
		add("6", "unprocessed (unsigned) image", errors.Is(err, vino.ErrNotSafe),
			"loader demands the toolchain's signature over rewritten code")

		// Rule 8: global policy needs privilege.
		_, err = p.BuildAndInstall("vm.global-policy", ".name bias\n.func main\nmain:\n ret", vino.InstallOptions{})
		add("8", "normal user grafting global policy", errors.Is(err, vino.ErrPrivilege),
			"global points require root")
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Table 1 scorecard — rules for grafting:")
	allOK := true
	for _, c := range checks {
		status := "ENFORCED"
		if !c.ok {
			status = "BROKEN"
			allOK = false
		}
		fmt.Printf("  rule %-4s %-38s %-9s %s\n", c.rule, c.what, status, c.note)
	}
	if !allOK {
		log.Fatal("some rules are not enforced")
	}
	fmt.Println("\nall attempted misbehaviors were contained; the kernel survived.")
}
